"""Sharded snapshot store: roundtrips, budget/eviction, malformed dirs."""

import json

import numpy as np
import pytest

from repro.errors import GraphError, GraphFormatError
from repro.graph.generators import chung_lu_directed, chung_lu_undirected
from repro.store.shard import (
    EVICTION_POLICIES,
    MANIFEST_NAME,
    GraphShard,
    ShardedGraph,
    load_sharded,
    save_sharded,
    shard_bounds,
)


@pytest.fixture
def undirected():
    return chung_lu_undirected(300, 1_200, seed=21)


@pytest.fixture
def directed():
    return chung_lu_directed(300, 1_200, seed=22)


def _rewrite_shard(path, mutate):
    """Round-trip one shard .npz through ``mutate(arrays_dict)``."""
    with np.load(path) as data:  # repro-lint: disable=R014 (tamper harness)
        arrays = {name: data[name].copy() for name in data.files}
    mutate(arrays)
    np.savez(path, **arrays)  # repro-lint: disable=R014 (tamper harness)


class TestShardBounds:
    def test_covers_range_and_balances_mass(self, undirected):
        bounds = shard_bounds(undirected.indptr, 4)
        assert bounds.dtype == np.int64
        assert bounds[0] == 0 and bounds[-1] == undirected.num_vertices
        assert np.all(np.diff(bounds) >= 0)
        masses = np.diff(undirected.indptr.astype(np.int64)[bounds])
        # Balanced by adjacency slots: no shard is wildly off the mean.
        assert masses.max() <= 2 * (2 * undirected.num_edges) / 4 + masses.min()

    def test_rejects_bad_part_counts(self, undirected):
        with pytest.raises(GraphError):
            shard_bounds(undirected.indptr, 0)
        with pytest.raises(GraphError):
            shard_bounds(undirected.indptr, undirected.num_vertices + 1)


class TestRoundtrip:
    @pytest.mark.parametrize("shards", [1, 3, 8])
    def test_undirected_to_graph_bit_identical(self, undirected, tmp_path, shards):
        chain = save_sharded(undirected, tmp_path, shards=shards)
        sharded = load_sharded(tmp_path)
        assert sharded.chain_fingerprint == chain
        rebuilt = sharded.to_graph()
        assert rebuilt.indptr.dtype == undirected.indptr.dtype
        assert np.array_equal(rebuilt.indptr, undirected.indptr)
        assert np.array_equal(rebuilt.indices, undirected.indices)
        assert rebuilt.fingerprint() == undirected.fingerprint()

    @pytest.mark.parametrize("shards", [1, 3, 8])
    def test_directed_to_graph_bit_identical(self, directed, tmp_path, shards):
        save_sharded(directed, tmp_path, shards=shards)
        rebuilt = load_sharded(tmp_path).to_graph()
        for name in ("edge_src", "edge_dst", "out_indptr", "out_indices",
                     "out_edge_ids", "in_indptr", "in_indices", "in_edge_ids"):
            ours = getattr(rebuilt, name if name.startswith(("out_", "in_"))
                           else f"_{name}")
            theirs = getattr(directed, name if name.startswith(("out_", "in_"))
                             else f"_{name}")
            assert ours.dtype == theirs.dtype, name
            assert np.array_equal(ours, theirs), name
        assert rebuilt.fingerprint() == directed.fingerprint()

    def test_monolithic_fingerprint_shared(self, undirected, tmp_path):
        save_sharded(undirected, tmp_path, shards=4)
        sharded = load_sharded(tmp_path)
        assert sharded.fingerprint() == undirected.fingerprint()

    def test_resharding_removes_stale_files(self, undirected, tmp_path):
        save_sharded(undirected, tmp_path, shards=8)
        save_sharded(undirected, tmp_path, shards=2)
        sharded = load_sharded(tmp_path)  # stale shard_00002+ would fail
        assert sharded.num_shards == 2
        assert sharded.verify() == sharded.chain_fingerprint

    def test_manifest_contents(self, undirected, tmp_path):
        save_sharded(undirected, tmp_path, shards=4)
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        assert manifest["kind"] == "undirected"
        assert manifest["num_vertices"] == undirected.num_vertices
        assert manifest["num_edges"] == undirected.num_edges
        assert manifest["index_dtype"] == undirected.indptr.dtype.str
        assert len(manifest["shards"]) == 4
        # Per-shard entries sum to the full adjacency (2m slots).
        assert sum(r["entries"] for r in manifest["shards"]) == \
            2 * undirected.num_edges


class TestShardAccess:
    def test_shard_is_rebased_and_attribute_backed(self, undirected, tmp_path):
        save_sharded(undirected, tmp_path, shards=3)
        sharded = load_sharded(tmp_path)
        shard = sharded.shard(1)
        assert isinstance(shard, GraphShard)
        lo, hi = shard.lo, shard.hi
        assert shard.num_vertices == hi - lo
        assert shard.indptr[0] == 0
        expected = undirected.indptr[lo:hi + 1] - undirected.indptr[lo]
        assert np.array_equal(shard.indptr, expected)
        with pytest.raises(AttributeError):
            shard.not_a_member

    def test_shard_of_and_owners(self, undirected, tmp_path):
        save_sharded(undirected, tmp_path, shards=3)
        sharded = load_sharded(tmp_path)
        owners = sharded.owners(np.arange(undirected.num_vertices))
        for index in range(3):
            lo, hi = sharded.bounds[index], sharded.bounds[index + 1]
            assert np.all(owners[lo:hi] == index)
        assert sharded.shard_of(0) == 0
        with pytest.raises(GraphError):
            sharded.shard(3)

    def test_degrees_match_monolithic(self, undirected, directed, tmp_path):
        u_dir, d_dir = tmp_path / "u", tmp_path / "d"
        save_sharded(undirected, u_dir, shards=3)
        save_sharded(directed, d_dir, shards=3)
        sharded_u = load_sharded(u_dir)
        sharded_d = load_sharded(d_dir)
        assert np.array_equal(sharded_u.degrees(), undirected.degrees())
        assert sharded_u.degrees().dtype == undirected.degrees().dtype
        assert np.array_equal(sharded_d.out_degrees(), directed.out_degrees())
        assert np.array_equal(sharded_d.in_degrees(), directed.in_degrees())
        assert sharded_d.in_degrees().dtype == directed.in_degrees().dtype
        with pytest.raises(GraphError):
            sharded_u.out_degrees()
        with pytest.raises(GraphError):
            sharded_d.degrees()


class TestBudgetAndEviction:
    def _sizes(self, directory):
        manifest = json.loads((directory / MANIFEST_NAME).read_text())
        return [r["nbytes"] for r in manifest["shards"]]

    def test_unbudgeted_keeps_everything(self, undirected, tmp_path):
        save_sharded(undirected, tmp_path, shards=4)
        sharded = load_sharded(tmp_path)
        for index in range(4):
            sharded.shard(index)
        stats = sharded.stats()
        assert stats["shard_loads"] == 4 and stats["evictions"] == 0
        assert stats["resident_bytes"] == sum(self._sizes(tmp_path))
        assert stats["peak_resident_bytes"] == stats["resident_bytes"]

    def test_budget_is_a_hard_ceiling(self, undirected, tmp_path):
        save_sharded(undirected, tmp_path, shards=4)
        sizes = self._sizes(tmp_path)
        budget = max(sizes) + min(sizes) // 2  # ~1 shard fits at a time
        sharded = load_sharded(tmp_path, memory_budget_bytes=budget)
        for index in range(4):
            sharded.shard(index)
            assert sharded.memory_bytes() <= budget
        stats = sharded.stats()
        assert stats["evictions"] >= 3
        assert stats["peak_resident_bytes"] <= budget

    def test_lru_prefers_recently_used(self, undirected, tmp_path):
        save_sharded(undirected, tmp_path, shards=4)
        budget = sum(sorted(self._sizes(tmp_path))[-2:]) + 8  # two fit
        sharded = load_sharded(tmp_path, memory_budget_bytes=budget)
        sharded.shard(0)
        sharded.shard(1)
        sharded.shard(0)  # refresh 0 -> 1 is now the LRU victim
        sharded.shard(2)
        assert set(sharded.resident_shards()) == {0, 2}

    def test_fifo_evicts_oldest_load(self, undirected, tmp_path):
        save_sharded(undirected, tmp_path, shards=4)
        budget = sum(sorted(self._sizes(tmp_path))[-2:]) + 8
        sharded = load_sharded(tmp_path, memory_budget_bytes=budget,
                               eviction="fifo")
        sharded.shard(0)
        sharded.shard(1)
        sharded.shard(0)  # a hit does not refresh under fifo
        sharded.shard(2)
        assert set(sharded.resident_shards()) == {1, 2}

    def test_single_oversized_shard_raises(self, undirected, tmp_path):
        save_sharded(undirected, tmp_path, shards=2)
        budget = min(self._sizes(tmp_path)) - 1
        sharded = load_sharded(tmp_path, memory_budget_bytes=budget)
        with pytest.raises(GraphError, match="memory_budget_bytes"):
            sharded.shard(int(np.argmax(self._sizes(tmp_path))))

    def test_bad_policy_and_budget_rejected(self, undirected, tmp_path):
        save_sharded(undirected, tmp_path, shards=2)
        assert "lru" in EVICTION_POLICIES and "fifo" in EVICTION_POLICIES
        with pytest.raises(GraphError):
            load_sharded(tmp_path, eviction="mru")
        with pytest.raises(GraphError):
            load_sharded(tmp_path, memory_budget_bytes=0)

    def test_reset_stats(self, undirected, tmp_path):
        save_sharded(undirected, tmp_path, shards=2)
        sharded = load_sharded(tmp_path)
        sharded.shard(0)
        sharded.reset_stats()
        stats = sharded.stats()
        assert stats["shard_loads"] == 0 and stats["evictions"] == 0
        assert stats["peak_resident_bytes"] == stats["resident_bytes"]


class TestIntegrity:
    def test_verify_roundtrip(self, directed, tmp_path):
        chain = save_sharded(directed, tmp_path, shards=3)
        assert load_sharded(tmp_path).verify() == chain

    def test_verify_detects_tampered_payload(self, undirected, tmp_path):
        save_sharded(undirected, tmp_path, shards=3)
        target = tmp_path / "shard_00001.npz"

        def corrupt(arrays):
            arrays["indices"] = arrays["indices"][::-1].copy()

        _rewrite_shard(target, corrupt)
        with pytest.raises(GraphFormatError, match="fingerprint"):
            load_sharded(tmp_path).verify()

    def test_verify_detects_tampered_chain(self, undirected, tmp_path):
        save_sharded(undirected, tmp_path, shards=2)
        manifest_path = tmp_path / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["chain_fingerprint"] = "0" * 32
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(GraphFormatError, match="chain"):
            load_sharded(tmp_path).verify()


class TestMalformedDirectories:
    """Satellite: manifest-vs-directory mismatches fail loudly at load."""

    def _manifest(self, directory):
        return json.loads((directory / MANIFEST_NAME).read_text())

    def _write(self, directory, manifest):
        (directory / MANIFEST_NAME).write_text(json.dumps(manifest))

    def test_not_a_directory(self, tmp_path):
        with pytest.raises(GraphFormatError, match="not a sharded snapshot"):
            load_sharded(tmp_path / "nope")

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(GraphFormatError, match=MANIFEST_NAME):
            load_sharded(tmp_path)

    def test_unparseable_manifest(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(GraphFormatError, match="unreadable"):
            load_sharded(tmp_path)

    def test_manifest_not_an_object(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("[1, 2, 3]")
        with pytest.raises(GraphFormatError, match="not an object"):
            load_sharded(tmp_path)

    def test_missing_manifest_key(self, undirected, tmp_path):
        save_sharded(undirected, tmp_path, shards=2)
        manifest = self._manifest(tmp_path)
        del manifest["bounds"]
        self._write(tmp_path, manifest)
        with pytest.raises(GraphFormatError, match="bounds"):
            load_sharded(tmp_path)

    def test_unsupported_format_version(self, undirected, tmp_path):
        save_sharded(undirected, tmp_path, shards=2)
        manifest = self._manifest(tmp_path)
        manifest["format_version"] = 99
        self._write(tmp_path, manifest)
        with pytest.raises(GraphFormatError, match="format version"):
            load_sharded(tmp_path)

    def test_bad_index_dtype(self, undirected, tmp_path):
        save_sharded(undirected, tmp_path, shards=2)
        manifest = self._manifest(tmp_path)
        manifest["index_dtype"] = "<not-a-dtype>"
        self._write(tmp_path, manifest)
        with pytest.raises(GraphFormatError, match="index_dtype"):
            load_sharded(tmp_path)

    def test_bounds_not_covering(self, undirected, tmp_path):
        save_sharded(undirected, tmp_path, shards=2)
        manifest = self._manifest(tmp_path)
        manifest["bounds"][-1] -= 1
        self._write(tmp_path, manifest)
        with pytest.raises(GraphFormatError, match="cover the vertex range"):
            load_sharded(tmp_path)

    def test_missing_shard_file(self, undirected, tmp_path):
        save_sharded(undirected, tmp_path, shards=3)
        (tmp_path / "shard_00001.npz").unlink()
        with pytest.raises(GraphFormatError, match="missing"):
            load_sharded(tmp_path)

    def test_extra_shard_file(self, undirected, tmp_path):
        save_sharded(undirected, tmp_path, shards=2)
        extra = tmp_path / "shard_00007.npz"
        extra.write_bytes((tmp_path / "shard_00000.npz").read_bytes())
        with pytest.raises(GraphFormatError, match="not listed"):
            load_sharded(tmp_path)

    def test_reordered_shard_records(self, undirected, tmp_path):
        save_sharded(undirected, tmp_path, shards=3)
        manifest = self._manifest(tmp_path)
        records = manifest["shards"]
        records[0], records[1] = records[1], records[0]
        self._write(tmp_path, manifest)
        with pytest.raises(GraphFormatError, match="renamed, reordered"):
            load_sharded(tmp_path)

    def test_renamed_shard_file(self, undirected, tmp_path):
        save_sharded(undirected, tmp_path, shards=2)
        manifest = self._manifest(tmp_path)
        manifest["shards"][1]["file"] = "shard_custom.npz"
        self._write(tmp_path, manifest)
        with pytest.raises(GraphFormatError, match="renamed, reordered"):
            load_sharded(tmp_path)

    def test_corrupt_shard_payload_fails_on_access(self, undirected, tmp_path):
        save_sharded(undirected, tmp_path, shards=2)
        (tmp_path / "shard_00001.npz").write_bytes(b"garbage")
        sharded = load_sharded(tmp_path)  # manifest-level checks pass
        with pytest.raises(GraphFormatError, match="shard file"):
            sharded.shard(1)
