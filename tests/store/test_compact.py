"""Dtype-aware index compaction: thresholds and the int64 escape hatch."""

import numpy as np

from repro.graph import UndirectedGraph
from repro.store.compact import (
    INT32_MAX,
    forced_int64,
    index_dtype,
    int64_forced,
    narrow_csr,
    set_force_int64,
)


class TestIndexDtype:
    def test_small_graph_narrows(self):
        assert index_dtype(10, 20) == np.dtype(np.int32)

    def test_boundary_values_still_narrow(self):
        assert index_dtype(INT32_MAX, INT32_MAX) == np.dtype(np.int32)

    def test_too_many_vertices_stays_wide(self):
        assert index_dtype(INT32_MAX + 1, 0) == np.dtype(np.int64)

    def test_large_offsets_stay_wide(self):
        # max_entry models the largest *offset* an index buffer holds
        # (2m + n for graphs that build the hindex-bin scratch), so it
        # alone can force int64 even when vertex ids fit.
        assert index_dtype(10, INT32_MAX + 1) == np.dtype(np.int64)

    def test_forced_int64_overrides(self):
        with forced_int64():
            assert index_dtype(10, 20) == np.dtype(np.int64)
        assert index_dtype(10, 20) == np.dtype(np.int32)


class TestEscapeHatch:
    def test_set_force_returns_previous(self):
        assert set_force_int64(True) is False
        try:
            assert int64_forced() is True
            assert set_force_int64(True) is True
        finally:
            set_force_int64(False)
        assert int64_forced() is False

    def test_context_manager_restores_on_error(self):
        try:
            with forced_int64():
                assert int64_forced()
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert not int64_forced()


class TestNarrowCsr:
    def test_narrows_int64_pair(self):
        indptr = np.array([0, 2, 4], dtype=np.int64)
        indices = np.array([1, 0, 1, 0], dtype=np.int64)
        narrow_ptr, narrow_idx = narrow_csr(indptr, indices, 2, 4)
        assert narrow_ptr.dtype == np.dtype(np.int32)
        assert narrow_idx.dtype == np.dtype(np.int32)
        assert np.array_equal(narrow_ptr, indptr)
        assert np.array_equal(narrow_idx, indices)

    def test_no_copy_when_already_target_dtype(self):
        indptr = np.array([0, 1], dtype=np.int32)
        indices = np.array([0], dtype=np.int32)
        narrow_ptr, narrow_idx = narrow_csr(indptr, indices, 1, 1)
        assert narrow_ptr is indptr
        assert narrow_idx is indices


class TestGraphIntegration:
    def test_small_graph_is_int32(self):
        graph = UndirectedGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert graph.indptr.dtype == np.dtype(np.int32)
        assert graph.indices.dtype == np.dtype(np.int32)

    def test_forced_int64_doubles_structural_bytes(self):
        edges = [(0, 1), (1, 2), (2, 3), (3, 0)]
        narrow = UndirectedGraph.from_edges(4, edges)
        with forced_int64():
            wide = UndirectedGraph.from_edges(4, edges)
        narrow_bytes = narrow.memory_bytes(include_scratch=False)
        wide_bytes = wide.memory_bytes(include_scratch=False)
        assert wide_bytes == 2 * narrow_bytes

    def test_dtype_participates_in_fingerprint(self):
        edges = [(0, 1), (1, 2)]
        narrow = UndirectedGraph.from_edges(3, edges)
        with forced_int64():
            wide = UndirectedGraph.from_edges(3, edges)
        assert narrow.fingerprint() != wide.fingerprint()
