"""Snapshot round-trips, mmap-backed loads, and malformed-file errors."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import DirectedGraph, UndirectedGraph
from repro.graph.io import load_npz, save_npz
from repro.store.compact import forced_int64
from repro.store.snapshot import load_snapshot, save_snapshot


@pytest.fixture
def undirected():
    return UndirectedGraph.from_edges(
        6, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 5)]
    )


@pytest.fixture
def directed():
    return DirectedGraph.from_edges(
        5, [(0, 1), (1, 2), (2, 0), (3, 1), (1, 3), (0, 4)]
    )


class TestRoundTrip:
    def test_undirected(self, undirected, tmp_path):
        path = tmp_path / "graph.npz"
        save_npz(undirected, path)
        loaded = load_npz(path)
        assert isinstance(loaded, UndirectedGraph)
        assert np.array_equal(loaded.indptr, undirected.indptr)
        assert np.array_equal(loaded.indices, undirected.indices)

    def test_directed(self, directed, tmp_path):
        path = tmp_path / "graph.npz"
        save_npz(directed, path)
        loaded = load_npz(path)
        assert isinstance(loaded, DirectedGraph)
        assert loaded.num_vertices == directed.num_vertices
        assert np.array_equal(loaded.edges(), directed.edges())
        assert np.array_equal(loaded.out_indptr, directed.out_indptr)
        assert np.array_equal(loaded.in_indptr, directed.in_indptr)

    def test_empty_graph(self, tmp_path):
        path = tmp_path / "empty.npz"
        save_npz(UndirectedGraph.empty(7), path)
        loaded = load_npz(path)
        assert loaded.num_vertices == 7
        assert loaded.num_edges == 0

    def test_int32_narrowed_dtype_preserved(self, undirected, tmp_path):
        assert undirected.indptr.dtype == np.dtype(np.int32)
        path = tmp_path / "graph.npz"
        save_npz(undirected, path)
        loaded = load_npz(path)
        assert loaded.indptr.dtype == np.dtype(np.int32)
        assert loaded.indices.dtype == np.dtype(np.int32)

    def test_legacy_edge_list_layout(self, undirected, tmp_path):
        path = tmp_path / "legacy.npz"
        np.savez(
            path,
            kind=np.array("undirected"),
            num_vertices=np.array(undirected.num_vertices, dtype=np.int64),
            edges=undirected.edges().astype(np.int64),
        )
        loaded = load_npz(path)
        assert np.array_equal(loaded.indptr, undirected.indptr)
        assert np.array_equal(loaded.indices, undirected.indices)


class TestFingerprint:
    def test_round_trip_adopts_stored_fingerprint(self, undirected, tmp_path):
        path = tmp_path / "graph.npz"
        stored = save_snapshot(undirected, path)
        loaded = load_snapshot(path)
        # Adopted without re-hashing: the private slot is already set.
        assert loaded._fingerprint == stored
        assert loaded.fingerprint() == undirected.fingerprint()

    def test_forced_int64_load_does_not_adopt(self, undirected, tmp_path):
        path = tmp_path / "graph.npz"
        stored = save_snapshot(undirected, path)
        with forced_int64():
            loaded = load_snapshot(path)
        # Construction re-widened the arrays, so the stored hash no
        # longer describes this object; a fresh hash must differ (dtype
        # participates in the fingerprint).
        assert loaded._fingerprint is None
        assert loaded.indptr.dtype == np.dtype(np.int64)
        assert loaded.fingerprint() != stored


class TestMmap:
    @staticmethod
    def _is_mmap_backed(array):
        import mmap

        base = array
        while isinstance(base, np.ndarray) and base.base is not None:
            base = base.base
        return isinstance(base, (np.memmap, mmap.mmap))

    def test_default_load_is_mmap_backed(self, undirected, tmp_path):
        path = tmp_path / "graph.npz"
        save_npz(undirected, path)
        loaded = load_npz(path, mmap=True)
        assert self._is_mmap_backed(loaded.indices)
        assert np.array_equal(loaded.indices, undirected.indices)

    def test_mmap_false_loads_plain_arrays(self, undirected, tmp_path):
        path = tmp_path / "graph.npz"
        save_npz(undirected, path)
        loaded = load_npz(path, mmap=False)
        assert not self._is_mmap_backed(loaded.indices)
        assert np.array_equal(loaded.indices, undirected.indices)


class TestMalformed:
    def test_not_a_zip(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_text("this is not a snapshot\n", encoding="utf-8")
        with pytest.raises(GraphFormatError):
            load_npz(path)

    def test_truncated_file(self, undirected, tmp_path):
        path = tmp_path / "graph.npz"
        save_npz(undirected, path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(GraphFormatError):
            load_npz(path)

    def test_missing_field(self, tmp_path):
        path = tmp_path / "partial.npz"
        np.savez(path, kind=np.array("undirected"))
        with pytest.raises(GraphFormatError, match="missing field"):
            load_npz(path)

    def test_unknown_kind(self, tmp_path):
        path = tmp_path / "weird.npz"
        np.savez(
            path,
            kind=np.array("hyper"),
            num_vertices=np.array(3, dtype=np.int64),
            edges=np.zeros((0, 2), dtype=np.int64),
        )
        with pytest.raises(GraphFormatError, match="unknown graph kind"):
            load_npz(path)

    def test_inconsistent_arrays(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(
            path,
            kind=np.array("undirected"),
            format_version=np.array(1, dtype=np.int64),
            num_vertices=np.array(2, dtype=np.int64),
            fingerprint=np.array("deadbeef"),
            indptr=np.array([0, 1, 3], dtype=np.int64),
            indices=np.array([1], dtype=np.int64),  # indptr[-1] != size
        )
        with pytest.raises(GraphFormatError, match="inconsistent snapshot"):
            load_npz(path)

    def test_snapshot_rejects_non_graph(self, tmp_path):
        from repro.errors import GraphError

        with pytest.raises(GraphError):
            save_snapshot(object(), tmp_path / "nope.npz")


class TestDirectoryInputs:
    """Directories are never snapshot files; sharded dirs get a pointer."""

    def test_plain_directory_is_rejected(self, tmp_path):
        with pytest.raises(GraphFormatError, match="is a directory"):
            load_snapshot(tmp_path)

    def test_sharded_directory_points_at_load_sharded(self, undirected, tmp_path):
        from repro.store.shard import save_sharded

        save_sharded(undirected, tmp_path, shards=2)
        with pytest.raises(GraphFormatError, match="load_sharded"):
            load_snapshot(tmp_path)

class TestDelta:
    """Edge-delta logs: bit-identical replay and strict validation."""

    def delta_path(self, tmp_path):
        return tmp_path / "graph.delta.npz"

    def test_replay_is_bit_identical_to_fresh_build(self, undirected, tmp_path):
        from repro.store.snapshot import replay_delta, save_delta

        path = self.delta_path(tmp_path)
        ops = [(+1, 1, 4), ("+", 0, 5), (-1, 2, 3), ("-", 0, 1)]
        assert save_delta(path, undirected.fingerprint(), ops) == 4
        replayed = replay_delta(undirected, path)

        edge_set = {tuple(e) for e in undirected.edges()}
        edge_set |= {(1, 4), (0, 5)}
        edge_set -= {(2, 3), (0, 1)}
        reference = UndirectedGraph.from_edges(
            undirected.num_vertices, sorted(edge_set)
        )
        assert np.array_equal(replayed.indptr, reference.indptr)
        assert np.array_equal(replayed.indices, reference.indices)
        assert replayed.indptr.dtype == reference.indptr.dtype
        assert replayed.indices.dtype == reference.indices.dtype
        assert replayed.fingerprint() == reference.fingerprint()

    def test_empty_log_replays_to_the_base(self, undirected, tmp_path):
        from repro.store.snapshot import replay_delta, save_delta

        path = self.delta_path(tmp_path)
        assert save_delta(path, undirected.fingerprint(), []) == 0
        assert replay_delta(undirected, path).fingerprint() == (
            undirected.fingerprint()
        )

    def test_unknown_op_is_rejected_at_save(self, undirected, tmp_path):
        from repro.errors import GraphError
        from repro.store.snapshot import save_delta

        with pytest.raises(GraphError, match="unknown delta op"):
            save_delta(
                self.delta_path(tmp_path), undirected.fingerprint(),
                [(0, 1, 2)],
            )

    def test_wrong_base_fingerprint_is_rejected(self, undirected, tmp_path):
        from repro.store.snapshot import replay_delta, save_delta

        path = self.delta_path(tmp_path)
        save_delta(path, "not-the-base", [(+1, 1, 4)])
        with pytest.raises(GraphFormatError, match="does not match"):
            replay_delta(undirected, path)

    def test_log_that_contradicts_the_base_is_rejected(
        self, undirected, tmp_path
    ):
        from repro.store.snapshot import replay_delta, save_delta

        path = self.delta_path(tmp_path)
        cases = [
            ([(+1, 0, 1)], "already present"),
            ([(-1, 0, 4)], "absent"),
            ([(+1, 2, 2)], "invalid delta edge"),
            ([(-1, 0, 99)], "invalid delta edge"),
        ]
        for ops, needle in cases:
            save_delta(path, undirected.fingerprint(), ops)
            with pytest.raises(GraphFormatError, match=needle):
                replay_delta(undirected, path)

    def test_non_delta_file_is_rejected(self, undirected, tmp_path):
        from repro.store.snapshot import load_delta

        path = tmp_path / "graph.npz"
        save_snapshot(undirected, path)
        with pytest.raises(GraphFormatError, match="not an edge-delta log"):
            load_delta(path)

    def test_missing_fields_are_rejected(self, tmp_path):
        from repro.store.snapshot import load_delta

        path = self.delta_path(tmp_path)
        np.savez(path, kind=np.array("delta"), ops=np.zeros(1, dtype=np.int8))
        with pytest.raises(GraphFormatError, match="missing delta field"):
            load_delta(path)

    def test_inconsistent_shapes_are_rejected(self, tmp_path):
        from repro.store.snapshot import load_delta

        path = self.delta_path(tmp_path)
        np.savez(
            path,
            kind=np.array("delta"),
            format_version=np.array(1, dtype=np.int64),
            base_fingerprint=np.array("abc"),
            ops=np.array([1, -1], dtype=np.int8),
            edges=np.array([[0, 1]], dtype=np.int64),
        )
        with pytest.raises(GraphFormatError, match="inconsistent delta arrays"):
            load_delta(path)

    def test_unreadable_file_is_rejected(self, tmp_path):
        from repro.store.snapshot import load_delta

        path = self.delta_path(tmp_path)
        path.write_bytes(b"not a zip archive")
        with pytest.raises(GraphFormatError, match="not a valid edge-delta log"):
            load_delta(path)

    def test_directed_base_is_rejected(self, directed, tmp_path):
        from repro.errors import GraphError
        from repro.store.snapshot import replay_delta, save_delta

        path = self.delta_path(tmp_path)
        save_delta(path, "whatever", [])
        with pytest.raises(GraphError, match="UndirectedGraph base"):
            replay_delta(directed, path)
