"""Fuzz: shard-assembled CSR is bit-identical to the monolithic build.

Random Chung–Lu replicas plus adversarial shapes (star, path, clique)
are sharded at several P, reassembled through ``ShardedGraph.to_graph``
and compared — dtype included — against both the original container and
the lexsort reference builder.  Undirected boundary tables must be
symmetric: every cross edge ``{u, v}`` appears once from each side.
"""

import numpy as np
import pytest

from repro.graph.directed import DirectedGraph
from repro.graph.generators import chung_lu_directed, chung_lu_undirected
from repro.graph.undirected import UndirectedGraph
from repro.store.csr import reference_csr_from_canonical
from repro.store.shard import load_sharded, save_sharded

PART_COUNTS = (1, 2, 3, 8)


def _star(n):
    return UndirectedGraph.from_edges(
        n, [(0, v) for v in range(1, n)]
    )


def _path(n):
    return UndirectedGraph.from_edges(
        n, [(v, v + 1) for v in range(n - 1)]
    )


def _clique(n):
    return UndirectedGraph.from_edges(
        n, [(u, v) for u in range(n) for v in range(u + 1, n)]
    )


def _directed_cycle_with_chords(n):
    edges = [(v, (v + 1) % n) for v in range(n)]
    edges += [(v, (v + 7) % n) for v in range(0, n, 3)]
    return DirectedGraph.from_edges(n, edges)


UNDIRECTED_CASES = [
    pytest.param(lambda: chung_lu_undirected(200, 700, seed=31), id="chung-lu-31"),
    pytest.param(lambda: chung_lu_undirected(150, 500, seed=32), id="chung-lu-32"),
    pytest.param(lambda: _star(64), id="star"),
    pytest.param(lambda: _path(80), id="path"),
    pytest.param(lambda: _clique(24), id="clique"),
]

DIRECTED_CASES = [
    pytest.param(lambda: chung_lu_directed(200, 700, seed=33), id="chung-lu-33"),
    pytest.param(lambda: chung_lu_directed(150, 500, seed=34), id="chung-lu-34"),
    pytest.param(lambda: _directed_cycle_with_chords(90), id="cycle-chords"),
]


@pytest.mark.parametrize("parts", PART_COUNTS)
@pytest.mark.parametrize("make_graph", UNDIRECTED_CASES)
def test_undirected_assembly_bit_identical(make_graph, parts, tmp_path):
    graph = make_graph()
    save_sharded(graph, tmp_path, shards=parts)
    sharded = load_sharded(tmp_path)
    rebuilt = sharded.to_graph()

    assert rebuilt.indptr.dtype == graph.indptr.dtype
    assert rebuilt.indices.dtype == graph.indices.dtype
    assert np.array_equal(rebuilt.indptr, graph.indptr)
    assert np.array_equal(rebuilt.indices, graph.indices)

    # ...and against the original lexsort reference, dtype-normalized
    # (the reference always emits int64).
    ref_indptr, ref_indices = reference_csr_from_canonical(
        graph.num_vertices, graph.edges()
    )
    assert np.array_equal(rebuilt.indptr.astype(np.int64), ref_indptr)
    assert np.array_equal(rebuilt.indices.astype(np.int64), ref_indices)


@pytest.mark.parametrize("parts", PART_COUNTS)
@pytest.mark.parametrize("make_graph", DIRECTED_CASES)
def test_directed_assembly_bit_identical(make_graph, parts, tmp_path):
    graph = make_graph()
    save_sharded(graph, tmp_path, shards=parts)
    rebuilt = load_sharded(tmp_path).to_graph()
    for name in ("out_indptr", "out_indices", "out_edge_ids",
                 "in_indptr", "in_indices", "in_edge_ids"):
        ours, theirs = getattr(rebuilt, name), getattr(graph, name)
        assert ours.dtype == theirs.dtype, name
        assert np.array_equal(ours, theirs), name
    assert np.array_equal(rebuilt.edge_src, graph.edge_src)
    assert np.array_equal(rebuilt.edge_dst, graph.edge_dst)
    assert rebuilt.fingerprint() == graph.fingerprint()


@pytest.mark.parametrize("parts", PART_COUNTS)
@pytest.mark.parametrize("make_graph", UNDIRECTED_CASES)
def test_undirected_boundary_tables_symmetric(make_graph, parts, tmp_path):
    graph = make_graph()
    save_sharded(graph, tmp_path, shards=parts)
    sharded = load_sharded(tmp_path)
    src_parts, dst_parts = [], []
    for index in range(parts):
        shard = sharded.shard(index)
        src_parts.append(np.asarray(shard.boundary_src, dtype=np.int64))
        dst_parts.append(np.asarray(shard.boundary_dst, dtype=np.int64))
        # Every boundary src is owned by this shard; no dst is.
        assert np.all((src_parts[-1] >= shard.lo) & (src_parts[-1] < shard.hi))
        outside = (dst_parts[-1] < shard.lo) | (dst_parts[-1] >= shard.hi)
        assert np.all(outside)
    src = np.concatenate(src_parts) if src_parts else np.empty(0, np.int64)
    dst = np.concatenate(dst_parts) if dst_parts else np.empty(0, np.int64)
    n = sharded.num_vertices
    forward = np.sort(src * n + dst)
    backward = np.sort(dst * n + src)
    assert np.array_equal(forward, backward)


@pytest.mark.parametrize("make_graph", UNDIRECTED_CASES)
def test_single_shard_has_no_boundary(make_graph, tmp_path):
    graph = make_graph()
    save_sharded(graph, tmp_path, shards=1)
    sharded = load_sharded(tmp_path)
    assert sharded.cross_adjacency_fraction() == 0.0
    assert sharded.shard(0).boundary_src.size == 0
