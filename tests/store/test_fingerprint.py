"""Content fingerprints: stable across construction paths, sensitive to
structure, kind and dtype."""

import io

import numpy as np

from repro.graph import DirectedGraph, UndirectedGraph
from repro.graph.io import read_undirected_edgelist
from repro.store.fingerprint import fingerprint_arrays

EDGES = [(0, 1), (0, 2), (1, 2), (2, 3)]


def test_identical_structure_same_fingerprint():
    a = UndirectedGraph.from_edges(4, EDGES)
    b = UndirectedGraph.from_edges(4, list(reversed(EDGES)))
    assert a.fingerprint() == b.fingerprint()


def test_text_parse_matches_programmatic_construction():
    text = "".join(f"{u} {v}\n" for u, v in EDGES)
    parsed, _ = read_undirected_edgelist(io.StringIO(text))
    built = UndirectedGraph.from_edges(4, EDGES)
    assert parsed.fingerprint() == built.fingerprint()


def test_structural_change_changes_fingerprint():
    base = UndirectedGraph.from_edges(4, EDGES)
    grown = UndirectedGraph.from_edges(4, EDGES + [(1, 3)])
    assert base.fingerprint() != grown.fingerprint()


def test_vertex_count_changes_fingerprint():
    # Same edges, one extra isolated vertex: different graphs.
    a = UndirectedGraph.from_edges(4, EDGES)
    b = UndirectedGraph.from_edges(5, EDGES)
    assert a.fingerprint() != b.fingerprint()


def test_directed_and_undirected_are_distinct():
    undirected = UndirectedGraph.from_edges(4, EDGES)
    directed = DirectedGraph.from_edges(4, EDGES)
    assert undirected.fingerprint() != directed.fingerprint()


def test_fingerprint_is_cached_per_instance():
    graph = UndirectedGraph.from_edges(4, EDGES)
    assert graph._fingerprint is None
    first = graph.fingerprint()
    assert graph._fingerprint == first
    assert graph.fingerprint() == first


class TestFingerprintArrays:
    def test_dtype_sensitivity(self):
        values = np.array([0, 1, 2], dtype=np.int64)
        assert fingerprint_arrays("undirected", 3, values) != fingerprint_arrays(
            "undirected", 3, values.astype(np.int32)
        )

    def test_kind_sensitivity(self):
        values = np.array([0, 1, 2], dtype=np.int64)
        assert fingerprint_arrays("undirected", 3, values) != fingerprint_arrays(
            "directed", 3, values
        )

    def test_content_sensitivity(self):
        a = np.array([0, 1, 2], dtype=np.int64)
        b = np.array([0, 1, 3], dtype=np.int64)
        assert fingerprint_arrays("undirected", 3, a) != fingerprint_arrays(
            "undirected", 3, b
        )

    def test_non_contiguous_input_hashes_like_contiguous(self):
        wide = np.arange(10, dtype=np.int64)
        strided = wide[::2]
        contiguous = np.ascontiguousarray(strided)
        assert fingerprint_arrays("undirected", 5, strided) == fingerprint_arrays(
            "undirected", 5, contiguous
        )
