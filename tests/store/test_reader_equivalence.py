"""Vectorized reader == strict line-by-line reader, errors included.

Every test parses the same text through both paths of
``read_undirected_edgelist`` and requires identical graphs, identical
labels, and — for malformed inputs — identical
:class:`~repro.errors.GraphFormatError` messages.
"""

import io

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.io import read_undirected_edgelist
from repro.store.reader import _first_seen_ids, read_edges_vectorized


def parse_both(text):
    """Parse ``text`` through both reader paths; return the fast result.

    Raises AssertionError unless graphs and labels agree exactly.
    """
    fast = read_undirected_edgelist(io.StringIO(text), vectorized=True)
    strict = read_undirected_edgelist(io.StringIO(text), vectorized=False)
    graph_fast, labels_fast = fast
    graph_strict, labels_strict = strict
    assert labels_fast == labels_strict
    assert np.array_equal(graph_fast.indptr, graph_strict.indptr)
    assert np.array_equal(graph_fast.indices, graph_strict.indices)
    return fast


def error_both(text):
    """Both paths must raise GraphFormatError with the same message."""
    with pytest.raises(GraphFormatError) as fast:
        read_undirected_edgelist(io.StringIO(text), vectorized=True)
    with pytest.raises(GraphFormatError) as strict:
        read_undirected_edgelist(io.StringIO(text), vectorized=False)
    assert str(fast.value) == str(strict.value)
    return str(fast.value)


EQUIVALENT_TEXTS = [
    pytest.param("0 1\n1 2\n2 0\n", id="plain-triangle"),
    pytest.param("5 3\n3 9\n9 5\n5 9\n", id="first-seen-order-and-dupes"),
    pytest.param("-1 -2\n-2 7\n", id="negative-integer-labels"),
    pytest.param("# header\n0 1\n% matrix-market style\n1 2\n", id="comments"),
    pytest.param("\n0 1\n\n\n1 2\n\n", id="blank-lines"),
    pytest.param("  0 1\n\t1 2\n", id="indented-data-lines"),
    pytest.param("0 1 99\n1 2 42\n", id="third-column-ignored"),
    pytest.param("0\t1\r\n1\t2\r\n", id="tabs-and-carriage-returns"),
    pytest.param("0 1\n1 2", id="no-trailing-newline"),
    pytest.param("", id="empty-text"),
    pytest.param("# only\n% comments\n", id="comments-only"),
    pytest.param("1 -2\n-2 1\n", id="negative-second-column"),
    pytest.param("-0 4\n4 1\n", id="minus-zero-token-stays-string"),
    pytest.param("12345678901234567890123 1\n1 2\n", id="token-beyond-2**53"),
    pytest.param("1e3 2\n2 3\n", id="scientific-notation-is-a-string"),
    pytest.param("7 007\n007 1\n", id="leading-zero-token-stays-string"),
    pytest.param("a b\nb c\n", id="string-labels"),
    pytest.param("node1 2\n2 node1\n", id="mixed-alpha-numeric-labels"),
    pytest.param("0 1\n#\n%\n1 0\n", id="bare-comment-markers"),
]


@pytest.mark.parametrize("text", EQUIVALENT_TEXTS)
def test_equivalent_parse(text):
    parse_both(text)


MALFORMED_TEXTS = [
    pytest.param("0 1\n2\n3 4\n", id="one-column-line"),
    pytest.param("1 2\n3\n4 5 6\n", id="ragged-with-coinciding-token-total"),
    pytest.param("1-2\n", id="embedded-minus-is-one-token"),
    pytest.param("# ok\nlonely\n", id="single-string-token"),
]


@pytest.mark.parametrize("text", MALFORMED_TEXTS)
def test_identical_errors(text):
    message = error_both(text)
    assert "expected at least two columns" in message


def test_error_reports_the_right_line_number():
    message = error_both("0 1\n# comment\n\n2\n")
    assert message.startswith("<stream>:4:")


def test_numeric_labels_are_canonical_strings():
    _, labels = parse_both("10 -3\n-3 0\n")
    assert labels == ["10", "-3", "0"]
    assert all(isinstance(label, str) for label in labels)


def test_first_seen_order_matches_interleaved_tokens():
    _, labels = parse_both("7 3\n3 5\n5 7\n")
    assert labels == ["7", "3", "5"]


def test_read_edges_vectorized_shapes():
    ids, labels = read_edges_vectorized(io.StringIO("4 2\n2 4\n4 8\n"))
    assert ids.shape == (3, 2)
    assert ids.dtype == np.int64
    assert labels == ["4", "2", "8"]
    # ids index into labels in first-seen order.
    assert ids.tolist() == [[0, 1], [1, 0], [0, 2]]


@pytest.mark.parametrize("seed", range(5))
def test_fuzz_random_numeric_files(seed):
    rng = np.random.default_rng(seed)
    m = int(rng.integers(1, 60))
    lo, hi = -50, 10_000
    lines = []
    for _ in range(m):
        u, v = rng.integers(lo, hi, size=2)
        roll = rng.random()
        if roll < 0.1:
            lines.append(f"# noise {u}")
        elif roll < 0.2:
            lines.append("")
        else:
            sep = "\t" if rng.random() < 0.3 else " "
            lines.append(f"{u}{sep}{v}")
    parse_both("\n".join(lines) + ("\n" if rng.random() < 0.5 else ""))


@pytest.mark.parametrize("seed", range(3))
def test_fuzz_random_string_files(seed):
    rng = np.random.default_rng(100 + seed)
    tokens = ["a", "bb", "x9", "-0", "007", "1e2", "n_1"]
    lines = [
        f"{tokens[rng.integers(len(tokens))]} {tokens[rng.integers(len(tokens))]}"
        for _ in range(int(rng.integers(1, 40)))
    ]
    parse_both("\n".join(lines) + "\n")


class TestFirstSeenInterner:
    """The dense direct-address table agrees with the np.unique fallback."""

    def test_dense_and_generic_agree(self):
        rng = np.random.default_rng(7)
        flat = rng.integers(-20, 300, size=500)
        ids_dense, uniq_dense = _first_seen_ids(flat)
        # Strings always take the generic np.unique path.
        ids_generic, uniq_generic = _first_seen_ids(
            flat.astype(np.str_)
        )
        assert np.array_equal(ids_dense, ids_generic)
        assert [str(v) for v in uniq_dense.tolist()] == list(uniq_generic)

    def test_sparse_values_fall_back_to_generic(self):
        # Span >> 4 * size: the dense table would be wasteful; the
        # generic path must still produce first-seen order.
        flat = np.array([10**12, 5, 10**12, -3, 5], dtype=np.int64)
        ids, uniq = _first_seen_ids(flat)
        assert uniq.tolist() == [10**12, 5, -3]
        assert ids.tolist() == [0, 1, 0, 2, 1]

    def test_matches_python_reference(self):
        rng = np.random.default_rng(11)
        flat = rng.integers(0, 40, size=200)
        ids, uniq = _first_seen_ids(flat)
        seen: dict = {}
        expected_ids = []
        for value in flat.tolist():
            expected_ids.append(seen.setdefault(value, len(seen)))
        assert ids.tolist() == expected_ids
        assert uniq.tolist() == list(seen)
