"""Unit tests for the Dinic max-flow substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AlgorithmError
from repro.flow import FlowNetwork


def _brute_force_min_cut(num_nodes, arcs, source, sink):
    """Minimum cut by enumerating all source-side subsets (oracle)."""
    best = float("inf")
    others = [v for v in range(num_nodes) if v not in (source, sink)]
    for mask in range(1 << len(others)):
        side = {source}
        for bit, v in enumerate(others):
            if (mask >> bit) & 1:
                side.add(v)
        cut = sum(c for u, v, c in arcs if u in side and v not in side)
        best = min(best, cut)
    return best


class TestBasics:
    def test_simple_path(self):
        net = FlowNetwork(3)
        net.add_edge(0, 1, 5.0)
        net.add_edge(1, 2, 3.0)
        assert net.max_flow(0, 2) == pytest.approx(3.0)

    def test_parallel_paths(self):
        net = FlowNetwork(4)
        net.add_edge(0, 1, 2.0)
        net.add_edge(0, 2, 2.0)
        net.add_edge(1, 3, 2.0)
        net.add_edge(2, 3, 2.0)
        assert net.max_flow(0, 3) == pytest.approx(4.0)

    def test_bottleneck_diamond(self):
        net = FlowNetwork(4)
        net.add_edge(0, 1, 10.0)
        net.add_edge(0, 2, 10.0)
        net.add_edge(1, 3, 1.0)
        net.add_edge(2, 3, 1.0)
        net.add_edge(1, 2, 10.0)
        assert net.max_flow(0, 3) == pytest.approx(2.0)

    def test_classic_crossing_edge(self):
        # The textbook example where the crossing edge enables more flow.
        net = FlowNetwork(4)
        net.add_edge(0, 1, 1000.0)
        net.add_edge(0, 2, 1000.0)
        net.add_edge(1, 2, 1.0)
        net.add_edge(1, 3, 1000.0)
        net.add_edge(2, 3, 1000.0)
        assert net.max_flow(0, 3) == pytest.approx(2000.0)

    def test_disconnected(self):
        net = FlowNetwork(4)
        net.add_edge(0, 1, 5.0)
        assert net.max_flow(0, 3) == 0.0

    def test_zero_capacity(self):
        net = FlowNetwork(2)
        net.add_edge(0, 1, 0.0)
        assert net.max_flow(0, 1) == 0.0


class TestValidation:
    def test_same_source_sink_rejected(self):
        with pytest.raises(AlgorithmError):
            FlowNetwork(2).max_flow(0, 0)

    def test_bad_endpoint_rejected(self):
        with pytest.raises(AlgorithmError):
            FlowNetwork(2).add_edge(0, 5, 1.0)

    def test_negative_capacity_rejected(self):
        with pytest.raises(AlgorithmError):
            FlowNetwork(2).add_edge(0, 1, -1.0)

    def test_cut_before_flow_rejected(self):
        net = FlowNetwork(2)
        net.add_edge(0, 1, 1.0)
        with pytest.raises(AlgorithmError):
            net.min_cut_source_side(0)


class TestMinCut:
    def test_source_side_separates(self):
        net = FlowNetwork(4)
        net.add_edge(0, 1, 3.0)
        net.add_edge(1, 2, 1.0)
        net.add_edge(2, 3, 3.0)
        net.max_flow(0, 3)
        side = set(net.min_cut_source_side(0).tolist())
        assert 0 in side and 3 not in side
        assert side == {0, 1}

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_max_flow_equals_min_cut(self, seed):
        rng = np.random.default_rng(seed)
        num_nodes = 6
        arcs = []
        net = FlowNetwork(num_nodes)
        for u in range(num_nodes):
            for v in range(num_nodes):
                if u != v and rng.random() < 0.4:
                    cap = float(rng.integers(1, 10))
                    net.add_edge(u, v, cap)
                    arcs.append((u, v, cap))
        flow = net.max_flow(0, num_nodes - 1)
        expected = _brute_force_min_cut(num_nodes, arcs, 0, num_nodes - 1)
        assert flow == pytest.approx(expected)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_reported_cut_value_matches_flow(self, seed):
        rng = np.random.default_rng(seed)
        num_nodes = 7
        arcs = []
        net = FlowNetwork(num_nodes)
        for u in range(num_nodes):
            for v in range(num_nodes):
                if u != v and rng.random() < 0.35:
                    cap = float(rng.integers(1, 8))
                    net.add_edge(u, v, cap)
                    arcs.append((u, v, cap))
        flow = net.max_flow(0, num_nodes - 1)
        side = set(net.min_cut_source_side(0).tolist())
        cut_value = sum(c for u, v, c in arcs if u in side and v not in side)
        assert cut_value == pytest.approx(flow)
