"""Tests for the paper-claim expectation registry."""

import pytest

from repro.bench import EXPECTATIONS, check_result, expectations_for
from repro.bench.reporting import ExperimentResult


class TestRegistry:
    def test_every_claim_names_an_experiment(self):
        experiments = {e.experiment for e in EXPECTATIONS}
        assert experiments <= {f"exp{i}" for i in range(1, 9)}

    def test_claims_are_descriptive(self):
        for expectation in EXPECTATIONS:
            assert len(expectation.claim) > 10

    def test_expectations_for_filters(self):
        exp5 = expectations_for("exp5")
        assert len(exp5) == 3
        assert all(e.experiment == "exp5" for e in exp5)

    def test_unknown_experiment_has_none(self):
        assert expectations_for("exp99") == []


class TestCheckResult:
    def _exp2(self, pkmc, local, pkc):
        return ExperimentResult(
            experiment="Exp-2",
            paper_artifact="Table 6",
            description="",
            headers=["algorithm", "PT"],
            rows=[["PKC", pkc], ["Local", local], ["PKMC", pkmc]],
        )

    def test_pass_on_paper_shape(self):
        outcomes = check_result("exp2", self._exp2(4, 50, 300))
        assert all(passed for _, passed in outcomes)

    def test_fail_on_wrong_iteration_count(self):
        outcomes = check_result("exp2", self._exp2(40, 50, 300))
        failed = [e.claim for e, passed in outcomes if not passed]
        assert any("3-5" in claim for claim in failed)

    def test_fail_on_wrong_ordering(self):
        outcomes = check_result("exp2", self._exp2(4, 300, 50))
        failed = [e.claim for e, passed in outcomes if not passed]
        assert any("PKMC < Local < PKC" in claim for claim in failed)

    def test_malformed_result_fails_gracefully(self):
        broken = ExperimentResult(
            experiment="Exp-2",
            paper_artifact="Table 6",
            description="",
            headers=["algorithm"],
            rows=[],
        )
        outcomes = check_result("exp2", broken)
        assert outcomes  # evaluated, not raised
        # An empty table vacuously satisfies per-dataset claims: the point
        # of this test is only that no exception escapes.

    def test_live_exp6_passes(self):
        from repro.bench import run_exp6

        result = run_exp6(datasets=("AM", "AR", "BA"))
        outcomes = check_result("exp6", result)
        assert outcomes
        assert all(passed for _, passed in outcomes)
