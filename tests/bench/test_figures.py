"""Tests for the ASCII figure renderers."""

import pytest

from repro.bench import chart_for, log_bar_chart, scaling_chart
from repro.bench.reporting import ExperimentResult


class TestLogBarChart:
    def test_basic_render(self):
        chart = log_bar_chart(
            "demo", ["D1"], {"A": [0.001], "B": [1.0]}
        )
        assert "demo" in chart
        assert "[D1]" in chart
        lines = {l.split("|")[0].strip(): l for l in chart.splitlines() if "|" in l}
        # B (1.0) gets a longer bar than A (0.001) on the log axis.
        assert lines["B"].count("#") > lines["A"].count("#")

    def test_dnf_full_bar(self):
        chart = log_bar_chart("demo", ["D1"], {"A": [0.5], "B": ["DNF"]})
        dnf_line = next(l for l in chart.splitlines() if "DNF" in l)
        assert dnf_line.count("#") == 40  # full bar

    def test_no_numeric_values(self):
        chart = log_bar_chart("demo", ["D1"], {"A": ["DNF"]})
        assert "no finished runs" in chart

    def test_multiple_groups(self):
        chart = log_bar_chart(
            "demo", ["D1", "D2"], {"A": [0.1, 0.2], "B": [0.3, 0.4]}
        )
        assert "[D1]" in chart and "[D2]" in chart


class TestScalingChart:
    def test_positions_monotone(self):
        chart = scaling_chart(
            "demo", [1, 2, 4], {"A": [1.0, 0.1, 0.01]}
        )
        positions = [
            line.index("*") for line in chart.splitlines() if "*" in line
        ]
        assert positions == sorted(positions, reverse=True)

    def test_oom_cell_rendered_as_text(self):
        chart = scaling_chart("demo", [1, 2], {"A": [1.0, "OOM"]})
        assert "OOM" in chart

    def test_x_labels_present(self):
        chart = scaling_chart("demo", [8, 16], {"A": [1.0, 0.5]}, x_label="p")
        assert "p=8" in chart and "p=16" in chart


class TestChartFor:
    def _result(self, experiment, headers, rows):
        return ExperimentResult(
            experiment=experiment,
            paper_artifact="Fig. X",
            description="",
            headers=headers,
            rows=rows,
        )

    def test_tables_return_none(self):
        result = self._result("Exp-2", ["algorithm", "PT"], [["PKMC", 3]])
        assert chart_for(result) is None
        result = self._result("Exp-6", ["stage", "AM"], [["PXY", 1]])
        assert chart_for(result) is None

    def test_exp1_grouped_bars(self):
        result = self._result(
            "Exp-1",
            ["dataset", "PKMC", "PBU", "PBU/PKMC"],
            [["PT", "0.001", "0.01", "10x"]],
        )
        chart = chart_for(result)
        assert "[PT]" in chart
        assert "PBU/PKMC" not in chart  # ratio columns skipped

    def test_exp7_per_dataset_curves(self):
        result = self._result(
            "Exp-7",
            ["dataset", "p", "PWC"],
            [["TW", 1, "0.01"], ["TW", 4, "0.003"], ["AR", 1, "0.002"]],
        )
        chart = chart_for(result)
        assert "TW" in chart and "AR" in chart
        assert "p=1" in chart
