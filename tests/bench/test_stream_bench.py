"""The streaming bench harness: payload shape and the regression gate."""

import copy
import json
from pathlib import Path

import pytest

from repro.bench.stream import (
    _PINNED,
    STREAM_SPEEDUP_FLOOR,
    check_regression,
    render_stream_report,
    run_stream_bench,
)

WORKLOADS = ("small_batch", "large_batch")


@pytest.fixture(scope="module")
def tiny_payload():
    # Tiny replay over the real dataset: wall-clock speedups are noisy
    # at this size, so tests assert structure and the built-in lockstep
    # bit-identity checks (which raise inside run_stream_bench on any
    # incremental-vs-rebuild drift).
    return run_stream_bench(
        seed=0,
        workloads=(("small_batch", 4, 3), ("large_batch", 900, 2)),
    )


def good_payload():
    """Synthetic payload with healthy numbers for gate-logic tests."""
    def side(updates_per_s, rebuilds, refreshes, affected, sweeps):
        total = rebuilds + refreshes
        return {
            "updates": 480,
            "total_s": 480 / updates_per_s,
            "updates_per_s": updates_per_s,
            "rebuilds": rebuilds,
            "incremental_refreshes": refreshes,
            "incremental_fraction": refreshes / total if total else 0.0,
            "affected_total": affected,
            "total_sweeps": sweeps,
        }

    def cell(batch_size, num_batches, inc, reb, speedup):
        return {
            "batch_size": batch_size,
            "num_batches": num_batches,
            "window_edges": 33272,
            "updates": 2 * batch_size * num_batches,
            "checkpoints": num_batches,
            "bit_identical": True,
            "incremental": inc,
            "rebuild": reb,
            "speedup": speedup,
            "final_report": {
                "k_star": 21,
                "updates_applied": 2 * batch_size * num_batches + 33272,
                "affected_vertices": 900,
                "incremental_fraction": inc["incremental_fraction"],
                "rebuilds": inc["rebuilds"],
            },
        }

    return {
        "schema": 1,
        "workload": {
            "dataset": "PT", "num_vertices": 3105,
            "num_edges": 41590, "seed": 0,
        },
        "workloads": {
            "small_batch": cell(
                8, 30,
                side(1800.0, 1, 30, 900, 120),
                side(180.0, 31, 0, 0, 600),
                10.0,
            ),
            "large_batch": cell(
                1000, 6,
                side(200.0, 7, 0, 0, 150),
                side(190.0, 7, 0, 0, 150),
                1.05,
            ),
        },
    }


class TestPayload:
    def test_structure(self, tiny_payload):
        assert tiny_payload["schema"] == 1
        assert set(tiny_payload["workloads"]) == set(WORKLOADS)
        for cell in tiny_payload["workloads"].values():
            assert cell["bit_identical"] is True
            assert cell["checkpoints"] == cell["num_batches"]
            # sliding-window streams make every op effective
            assert cell["updates"] == 2 * cell["batch_size"] * cell["num_batches"]
            assert cell["speedup"] > 0
            for counter in _PINNED:
                assert cell["incremental"][counter] >= 0

    def test_rebuild_mode_never_refreshes_incrementally(self, tiny_payload):
        for cell in tiny_payload["workloads"].values():
            assert cell["rebuild"]["incremental_refreshes"] == 0
            assert cell["rebuild"]["incremental_fraction"] == 0.0

    def test_oversized_batches_force_the_fallback(self, tiny_payload):
        large = tiny_payload["workloads"]["large_batch"]
        # 2x900 pending updates exceed the default region budget every
        # step, so even the incremental session degrades to rebuilds.
        assert large["incremental"]["rebuilds"] > large["num_batches"] // 2

    def test_final_report_carries_streaming_fields(self, tiny_payload):
        for cell in tiny_payload["workloads"].values():
            report = cell["final_report"]
            assert report["k_star"] > 0
            assert report["updates_applied"] > 0
            assert report["rebuilds"] >= 1  # the bulk window load
            assert 0.0 <= report["incremental_fraction"] <= 1.0

    def test_payload_is_json_serialisable(self, tiny_payload):
        assert json.loads(json.dumps(tiny_payload)) == tiny_payload

    def test_report_renders(self, tiny_payload):
        text = render_stream_report(tiny_payload)
        for needle in ("small_batch", "large_batch", "up/s", "checkpoints"):
            assert needle in text


class TestRegressionGate:
    def test_identical_healthy_payload_passes(self):
        assert check_regression(good_payload(), good_payload()) == []

    def test_small_batch_speedup_floor(self):
        current = good_payload()
        current["workloads"]["small_batch"]["speedup"] = (
            STREAM_SPEEDUP_FLOOR * 0.9
        )
        baseline = copy.deepcopy(current)
        failures = check_regression(current, baseline)
        assert any("acceptance floor" in f for f in failures)

    def test_large_batch_must_exercise_the_fallback(self):
        current = good_payload()
        current["workloads"]["large_batch"]["incremental"]["rebuilds"] = 0
        baseline = copy.deepcopy(current)
        failures = check_regression(current, baseline)
        assert any("full-rebuild fallback" in f for f in failures)

    def test_bit_identity_is_mandatory(self):
        current = good_payload()
        current["workloads"]["small_batch"]["bit_identical"] = False
        failures = check_regression(current, good_payload())
        assert any("bit-identical" in f for f in failures)

    @pytest.mark.parametrize("counter", _PINNED)
    def test_pinned_counters_gate_exactly(self, counter):
        current = good_payload()
        current["workloads"]["small_batch"]["incremental"][counter] += 1
        failures = check_regression(current, good_payload())
        assert any(
            f"deterministic counter {counter} drifted" in f for f in failures
        )

    def test_speedup_ratio_regression(self):
        current = good_payload()
        current["workloads"]["small_batch"]["speedup"] = 5.0  # from 10x
        failures = check_regression(current, good_payload())
        assert any("small_batch speedup regressed" in f for f in failures)

    def test_small_noise_tolerated(self):
        current = good_payload()
        for label in WORKLOADS:
            current["workloads"][label]["speedup"] *= 0.8  # within 35%
        assert check_regression(current, good_payload()) == []

    def test_committed_baseline_is_well_formed(self):
        baseline_path = Path(__file__).parents[2] / "BENCH_stream.json"
        baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
        assert baseline["schema"] == 1
        small = baseline["workloads"]["small_batch"]
        large = baseline["workloads"]["large_batch"]
        # The committed baseline must itself satisfy the acceptance bars.
        assert small["speedup"] >= STREAM_SPEEDUP_FLOOR
        assert large["incremental"]["rebuilds"] > 0
        assert all(c["bit_identical"] for c in baseline["workloads"].values())
        # And pass the gate against itself.
        assert check_regression(copy.deepcopy(baseline), baseline) == []
