"""Quick-variant runs of the eight experiments with shape assertions.

Each test runs an experiment on a reduced dataset/thread grid (keeping the
suite fast) and asserts the paper's qualitative claims hold on it.  The
full-grid artifacts are produced by the ``benchmarks/`` suite.
"""

import pytest

from repro.bench import (
    ALL_EXPERIMENTS,
    run_exp1,
    run_exp2,
    run_exp3,
    run_exp4,
    run_exp5,
    run_exp6,
    run_exp7,
    run_exp8,
)


def _as_float(cell):
    return float(cell)


class TestExp1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_exp1(datasets=("PT", "EW"))

    def test_pkmc_fastest(self, result):
        for abbr in ("PT", "EW"):
            pkmc_time = _as_float(result.cell(abbr, "PKMC"))
            for other in ("PFW", "PBU", "Local", "PKC"):
                assert pkmc_time < _as_float(result.cell(abbr, other))

    def test_pbu_gap_at_least_5x(self, result):
        for abbr in ("PT", "EW"):
            ratio = _as_float(result.cell(abbr, "PBU")) / _as_float(
                result.cell(abbr, "PKMC")
            )
            assert 5 <= ratio <= 25

    def test_pfw_orders_slower(self, result):
        for abbr in ("PT", "EW"):
            ratio = _as_float(result.cell(abbr, "PFW")) / _as_float(
                result.cell(abbr, "PKMC")
            )
            assert ratio > 50


class TestExp2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_exp2(datasets=("PT", "EW"))

    def test_pkmc_needs_3_to_5(self, result):
        for abbr in ("PT", "EW"):
            assert 3 <= result.cell("PKMC", abbr) <= 5

    def test_ordering(self, result):
        for abbr in ("PT", "EW"):
            assert (
                result.cell("PKMC", abbr)
                < result.cell("Local", abbr)
                < result.cell("PKC", abbr)
            )


class TestExp3:
    @pytest.fixture(scope="class")
    def result(self):
        return run_exp3(datasets=("PT",), threads=(1, 8, 64))

    def _series(self, result, algo):
        return {
            row[1]: _as_float(row[result.headers.index(algo)])
            for row in result.rows
        }

    def test_pkmc_scales(self, result):
        series = self._series(result, "PKMC")
        assert series[1] / series[8] > 4  # strong scaling to p=8

    def test_pkc_flattens(self, result):
        pkc = self._series(result, "PKC")
        pkmc = self._series(result, "PKMC")
        # PKC's 1 -> 64 speedup must trail PKMC's badly.
        assert pkc[1] / pkc[64] < 0.25 * (pkmc[1] / pkmc[64])


class TestExp4:
    @pytest.fixture(scope="class")
    def result(self):
        return run_exp4(
            datasets=("SK",), fractions=(0.2, 0.6, 1.0),
            algorithms=("PBU", "PKC", "PKMC"),
        )

    def test_pkmc_fastest_at_every_size(self, result):
        for row in result.rows:
            values = {
                algo: _as_float(row[result.headers.index(algo)])
                for algo in ("PBU", "PKC", "PKMC")
            }
            assert values["PKMC"] == min(values.values())

    def test_pbu_grows_with_edges(self, result):
        series = [
            _as_float(row[result.headers.index("PBU")]) for row in result.rows
        ]
        assert series == sorted(series)


class TestExp5:
    @pytest.fixture(scope="class")
    def result(self):
        return run_exp5(datasets=("AM", "AR", "BA"))

    def test_quadratic_baselines_dnf(self, result):
        for abbr in ("AM", "AR", "BA"):
            assert result.cell(abbr, "PBS") == "DNF"
            assert result.cell(abbr, "PFKS") == "DNF"

    def test_pfw_finishes_only_on_ar_ba(self, result):
        assert result.cell("AM", "PFW") == "DNF"
        assert result.cell("AR", "PFW") != "DNF"
        assert result.cell("BA", "PFW") != "DNF"

    def test_pwc_beats_pxy(self, result):
        for abbr in ("AM", "AR", "BA"):
            assert _as_float(result.cell(abbr, "PWC")) < _as_float(
                result.cell(abbr, "PXY")
            )


class TestExp6:
    @pytest.fixture(scope="class")
    def result(self):
        return run_exp6(datasets=("AM", "BA"))

    def test_stage_sizes_monotone(self, result):
        for abbr in ("AM", "BA"):
            assert (
                result.cell("PXY", abbr)
                >= result.cell("PWC_1", abbr)
                >= result.cell("PWC_w*", abbr)
                >= result.cell("PWC_D*", abbr)
            )

    def test_am_immediate(self, result):
        # Hub-dominated AM: the first level is already the answer.
        assert result.cell("PWC_1", "AM") == result.cell("PWC_w*", "AM")

    def test_first_prune_shrinks_an_order(self, result):
        for abbr in ("AM", "BA"):
            assert result.cell("PXY", abbr) > 10 * result.cell("PWC_1", abbr)


class TestExp7:
    @pytest.fixture(scope="class")
    def result(self):
        return run_exp7(datasets=("TW",), threads=(4, 16))

    def test_tw_oom_beyond_4_threads(self, result):
        by_p = {row[1]: row for row in result.rows}
        pxy_column = result.headers.index("PXY")
        pbd_column = result.headers.index("PBD")
        assert by_p[4][pxy_column] != "OOM"
        assert by_p[16][pxy_column] == "OOM"
        assert by_p[16][pbd_column] == "OOM"

    def test_pwc_unaffected_by_memory(self, result):
        pwc_column = result.headers.index("PWC")
        for row in result.rows:
            assert row[pwc_column] not in ("OOM", "DNF")


class TestExp8:
    @pytest.fixture(scope="class")
    def result(self):
        return run_exp8(datasets=("WE",), fractions=(0.2, 1.0))

    def test_pwc_fastest_everywhere(self, result):
        for row in result.rows:
            values = {
                algo: _as_float(row[result.headers.index(algo)])
                for algo in ("PBD", "PXY", "PWC")
            }
            assert values["PWC"] == min(values.values())

    def test_growth_with_edges(self, result):
        pwc_column = result.headers.index("PWC")
        series = [_as_float(row[pwc_column]) for row in result.rows]
        assert series[0] < series[-1]


class TestRegistry:
    def test_all_eight_registered(self):
        assert sorted(ALL_EXPERIMENTS) == [f"exp{i}" for i in range(1, 9)]
