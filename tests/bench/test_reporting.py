"""Tests for the table renderer and experiment-result container."""

import pytest

from repro.bench import ExperimentResult, render_table


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["a", "bbbb"], [["x", 1], ["yyyy", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_single_column(self):
        text = render_table(["only"], [["v"]])
        assert "only" in text and "v" in text

    def test_no_rows(self):
        text = render_table(["h1", "h2"], [])
        assert "h1" in text


class TestExperimentResult:
    def _result(self):
        return ExperimentResult(
            experiment="Exp-X",
            paper_artifact="Table 99",
            description="demo",
            headers=["dataset", "PKMC"],
            rows=[["PT", 1.5], ["EW", 2.5]],
            notes=["a note"],
        )

    def test_to_text_contains_everything(self):
        text = self._result().to_text()
        assert "Exp-X" in text
        assert "Table 99" in text
        assert "PT" in text
        assert "note: a note" in text

    def test_cell_lookup(self):
        assert self._result().cell("EW", "PKMC") == 2.5

    def test_cell_missing_key(self):
        with pytest.raises(KeyError):
            self._result().cell("ZZ", "PKMC")

    def test_cell_missing_column(self):
        with pytest.raises(ValueError):
            self._result().cell("PT", "nope")
