"""The serving bench harness: payload shape and the regression gate."""

import copy
import json

import pytest

from repro.bench.serve import (
    HOT_GRAPH_REUSE_FLOOR,
    SERVE_THROUGHPUT_FLOOR,
    check_regression,
    render_serve_report,
    run_serve_bench,
)

MIXES = ("hot-graph", "hot-solver", "uniform")


@pytest.fixture(scope="module")
def tiny_payload():
    # Small replay: wall-clock speedups are noisy at this size, so tests
    # assert structure and the built-in bit-identity checks (which raise
    # inside run_serve_bench on any served-vs-direct mismatch).
    return run_serve_bench(num_queries=18, wave=6, threads=4)


def good_payload():
    """Synthetic payload with healthy numbers for gate-logic tests."""
    def mix_cell(speedup, reuse):
        return {
            "num_queries": 120,
            "serial": {"total_s": 2.0, "qps": 60.0, "p50_s": 0.3, "p99_s": 0.6},
            "served": {
                "total_s": 0.2, "qps": 60.0 * speedup, "p50_s": 0.01,
                "p99_s": 0.1, "solver_runs": 9, "cache_hits": 80,
                "coalesced": 31, "batches": 9, "reuse_rate": reuse,
            },
            "throughput_speedup": speedup,
            "p99_speedup": 6.0,
        }

    return {
        "schema": 1,
        "workload": {
            "graphs": {"hot": {}, "warm": {}, "cold": {}},
            "solvers": ["pkmc", "charikar", "local"],
            "num_queries": 120,
            "wave": 40,
            "threads": 4,
            "seed": 0,
        },
        "mixes": {
            "hot-graph": mix_cell(11.0, 0.9),
            "hot-solver": mix_cell(12.0, 0.9),
            "uniform": mix_cell(10.0, 0.9),
        },
        "overload": {
            "submitted": 240, "accepted": 72,
            "rejected_queue_full": 109, "rejected_quota": 59,
            "peak_queue_depth": 24, "max_queue_depth": 24,
            "p99_s": 0.09, "max_solve_s": 0.03, "p99_bound_s": 0.72,
            "p99_bounded": True,
        },
    }


class TestPayload:
    def test_structure(self, tiny_payload):
        assert tiny_payload["schema"] == 1
        assert set(tiny_payload["mixes"]) == set(MIXES)
        for cell in tiny_payload["mixes"].values():
            assert cell["throughput_speedup"] > 0
            assert cell["served"]["solver_runs"] > 0
            assert 0.0 <= cell["served"]["reuse_rate"] <= 1.0
            assert cell["serial"]["p50_s"] <= cell["serial"]["p99_s"]

    def test_served_answers_fewer_solver_runs_than_queries(self, tiny_payload):
        for cell in tiny_payload["mixes"].values():
            served = cell["served"]
            assert served["solver_runs"] < cell["num_queries"]
            accounted = (
                served["solver_runs"] + served["cache_hits"] + served["coalesced"]
            )
            assert accounted == cell["num_queries"]

    def test_overload_sheds_and_stays_bounded(self, tiny_payload):
        overload = tiny_payload["overload"]
        assert overload["rejected_queue_full"] > 0
        assert overload["rejected_quota"] > 0
        assert overload["peak_queue_depth"] <= overload["max_queue_depth"]
        assert overload["accepted"] + overload["rejected_queue_full"] + (
            overload["rejected_quota"]
        ) == overload["submitted"]
        assert overload["p99_bounded"]

    def test_payload_is_json_serialisable(self, tiny_payload):
        assert json.loads(json.dumps(tiny_payload)) == tiny_payload

    def test_report_renders(self, tiny_payload):
        text = render_serve_report(tiny_payload)
        for needle in ("hot-graph", "hot-solver", "uniform", "overload", "reuse"):
            assert needle in text


class TestRegressionGate:
    def test_identical_healthy_payload_passes(self):
        assert check_regression(good_payload(), good_payload()) == []

    def test_hot_graph_throughput_floor(self):
        current = good_payload()
        current["mixes"]["hot-graph"]["throughput_speedup"] = (
            SERVE_THROUGHPUT_FLOOR * 0.9
        )
        baseline = copy.deepcopy(current)
        failures = check_regression(current, baseline)
        assert any("acceptance floor" in f for f in failures)

    def test_reuse_rate_floor(self):
        current = good_payload()
        current["mixes"]["hot-graph"]["served"]["reuse_rate"] = (
            HOT_GRAPH_REUSE_FLOOR * 0.5
        )
        failures = check_regression(current, good_payload())
        assert any("reuse rate" in f for f in failures)

    def test_throughput_ratio_regression(self):
        current = good_payload()
        current["mixes"]["uniform"]["throughput_speedup"] = 6.0  # from 10x
        failures = check_regression(current, good_payload())
        assert any("uniform throughput speedup regressed" in f for f in failures)

    def test_small_noise_tolerated(self):
        current = good_payload()
        for mix in MIXES:
            current["mixes"][mix]["throughput_speedup"] *= 0.85  # within 30%
        assert check_regression(current, good_payload()) == []

    def test_overload_must_shed_structurally(self):
        current = good_payload()
        current["overload"]["rejected_quota"] = 0
        failures = check_regression(current, good_payload())
        assert any("shed structurally" in f for f in failures)

    def test_queue_growth_past_bound_fails(self):
        current = good_payload()
        current["overload"]["peak_queue_depth"] = 999
        failures = check_regression(current, good_payload())
        assert any("past its bound" in f for f in failures)

    def test_unbounded_p99_fails(self):
        current = good_payload()
        current["overload"]["p99_bounded"] = False
        failures = check_regression(current, good_payload())
        assert any("structural bound" in f for f in failures)

    def test_committed_baseline_is_well_formed(self):
        from pathlib import Path

        baseline_path = Path(__file__).parents[2] / "BENCH_serve.json"
        baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
        assert baseline["schema"] == 1
        hot = baseline["mixes"]["hot-graph"]
        # The committed baseline must itself satisfy the acceptance bars.
        assert hot["throughput_speedup"] >= SERVE_THROUGHPUT_FLOOR
        assert hot["served"]["reuse_rate"] >= HOT_GRAPH_REUSE_FLOOR
        assert baseline["overload"]["rejected_queue_full"] > 0
        assert baseline["overload"]["rejected_quota"] > 0
        assert baseline["overload"]["p99_bounded"]
        # And pass the gate against itself.
        assert check_regression(copy.deepcopy(baseline), baseline) == []
