"""Tests for the experiment runner and budgets."""

import pytest

from repro.bench import (
    RunRecord,
    format_status,
    paper_graph_copy_bytes,
    run_cell,
    scaled_memory_limit,
)
from repro.datasets import get_spec
from repro.graph import gnm_random_directed, gnm_random_undirected


class TestRunCell:
    def test_ok_record(self):
        g = gnm_random_undirected(50, 150, seed=0)
        record = run_cell("toy", "PKMC", g, threads=4)
        assert record.ok
        assert record.status == "ok"
        assert record.simulated_seconds > 0
        assert record.wall_seconds >= 0
        assert record.density > 0

    def test_report_attached(self):
        g = gnm_random_undirected(50, 150, seed=0)
        record = run_cell("toy", "PKMC", g, threads=4)
        assert record.report is not None
        assert record.report.solver == "pkmc"
        assert record.report.simulated_seconds == record.simulated_seconds

    def test_dnf_record(self):
        d = gnm_random_directed(2000, 6000, seed=0)
        record = run_cell("toy", "PBS", d, threads=4, time_limit=1e-3)
        assert record.status == "DNF"
        assert not record.ok
        assert record.simulated_seconds == 1e-3
        assert record.report is None

    def test_oom_record(self):
        d = gnm_random_directed(200, 600, seed=0)
        record = run_cell("toy", "PXY", d, threads=64, memory_limit=100.0)
        assert record.status == "OOM"

    def test_format_status(self):
        ok = RunRecord("d", "a", 1, "ok", simulated_seconds=0.12345, wall_seconds=0)
        assert format_status(ok) == "0.1235"  # 4 significant digits
        dnf = RunRecord("d", "a", 1, "DNF", simulated_seconds=1, wall_seconds=0)
        assert format_status(dnf) == "DNF"


class TestMemoryScaling:
    def test_twitter_needs_64bit_edge_ids(self):
        tw = paper_graph_copy_bytes(get_spec("TW"))
        we = paper_graph_copy_bytes(get_spec("WE"))
        # TW has ~4.5x WE's edges but ~9x the bytes (64-bit indices).
        assert tw / we > 7

    def test_oom_thresholds_match_paper(self):
        # p copies of the real graph vs the 255 GB server.
        tw = paper_graph_copy_bytes(get_spec("TW"))
        we = paper_graph_copy_bytes(get_spec("WE"))
        assert 4 * tw < 255e9 < 8 * tw  # TW dies at p = 8 (paper: p > 4)
        assert 64 * we < 255e9          # WE runs even at p = 64

    def test_scaled_limit_proportional(self):
        spec = get_spec("TW")
        limit = scaled_memory_limit(spec)
        assert 0 < limit < 255e9
