"""The storage bench harness: payload shape and the regression gate."""

import copy
import json

import pytest

from repro.bench.store import check_regression, render_store_report, run_store_bench

WALL_SECTIONS = {"ingestion", "end_to_end", "csr_build", "snapshot", "cache"}


@pytest.fixture(scope="module")
def tiny_payload():
    # A small workload keeps the suite fast; wall-clock speedups are noisy
    # at this size, so tests only assert structure and the built-in
    # equivalence checks (which raise inside run_store_bench on mismatch).
    return run_store_bench(num_vertices=300, num_edges=900, repeats=1, threads=4)


def good_payload():
    """Synthetic payload with healthy numbers for gate-logic tests."""
    return {
        "schema": 1,
        "workload": {"num_vertices": 20_000, "num_edges": 100_000},
        "wall_clock": {
            "ingestion": {
                "line_by_line_s": 0.08,
                "vectorized_s": 0.032,
                "speedup": 2.5,
            },
            "end_to_end": {
                "line_by_line_s": 0.14,
                "vectorized_s": 0.08,
                "speedup": 1.75,
            },
            "csr_build": {
                "lexsort_s": 0.02,
                "counting_sort_s": 0.005,
                "speedup": 4.0,
            },
            "snapshot": {"text_parse_s": 0.08, "npz_load_s": 0.002, "speedup": 40.0},
            "cache": {"cold_s": 0.1, "hit_s": 0.0001, "speedup": 1000.0},
        },
        "memory": {
            "int32_bytes": 880_004,
            "int64_bytes": 1_760_008,
            "ratio": 2.0,
            "index_dtype": "int32",
        },
    }


class TestPayload:
    def test_structure(self, tiny_payload):
        assert tiny_payload["schema"] == 1
        assert set(tiny_payload["wall_clock"]) == WALL_SECTIONS
        for section in tiny_payload["wall_clock"].values():
            assert section["speedup"] > 0
        assert tiny_payload["memory"]["int32_bytes"] > 0

    def test_small_graph_actually_narrows(self, tiny_payload):
        memory = tiny_payload["memory"]
        assert memory["index_dtype"] == "int32"
        assert memory["int64_bytes"] == 2 * memory["int32_bytes"]
        assert memory["ratio"] == pytest.approx(2.0)

    def test_payload_is_json_serialisable(self, tiny_payload):
        assert json.loads(json.dumps(tiny_payload)) == tiny_payload

    def test_report_renders(self, tiny_payload):
        text = render_store_report(tiny_payload)
        for needle in ("ingestion", "csr build", "snapshot", "cache", "memory"):
            assert needle in text


class TestRegressionGate:
    def test_identical_healthy_payload_passes(self):
        assert check_regression(good_payload(), good_payload()) == []

    @pytest.mark.parametrize(
        "section, floor",
        [("ingestion", 2.0), ("csr_build", 2.0), ("snapshot", 5.0), ("cache", 50.0)],
    )
    def test_absolute_speedup_floors(self, section, floor):
        current = good_payload()
        current["wall_clock"][section]["speedup"] = floor * 0.9
        baseline = good_payload()
        baseline["wall_clock"][section]["speedup"] = floor * 0.9
        failures = check_regression(current, baseline)
        assert any("acceptance floor" in f for f in failures)

    def test_wall_clock_ratio_regression(self):
        current = good_payload()
        current["wall_clock"]["end_to_end"]["speedup"] = 1.0
        failures = check_regression(current, good_payload())
        assert any("end_to_end speedup regressed" in f for f in failures)

    def test_small_wall_clock_noise_tolerated(self):
        current = good_payload()
        for section in ("ingestion", "end_to_end", "csr_build", "snapshot"):
            current["wall_clock"][section]["speedup"] *= 0.9  # within 25%
        assert check_regression(current, good_payload()) == []

    def test_cache_is_gated_on_the_absolute_floor_only(self):
        # Hit latency is timer-noise-dominated, so a large baseline ratio
        # must not make a healthy current run fail.
        current = good_payload()
        current["wall_clock"]["cache"]["speedup"] = 100.0  # >> 50x floor
        baseline = good_payload()
        baseline["wall_clock"]["cache"]["speedup"] = 5000.0
        assert check_regression(current, baseline) == []

    def test_memory_ratio_floor(self):
        current = good_payload()
        current["memory"]["ratio"] = 1.5
        failures = check_regression(current, good_payload())
        assert any("compaction ratio" in f for f in failures)

    def test_memory_growth_fails(self):
        current = good_payload()
        current["memory"]["int32_bytes"] += 1
        failures = check_regression(current, good_payload())
        assert any("footprint grew" in f for f in failures)

    def test_committed_baseline_is_well_formed(self):
        from pathlib import Path

        baseline_path = Path(__file__).parents[2] / "BENCH_store.json"
        baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
        assert baseline["schema"] == 1
        # The committed baseline must itself satisfy the acceptance bars.
        wall = baseline["wall_clock"]
        assert wall["ingestion"]["speedup"] >= 2.0
        assert wall["csr_build"]["speedup"] >= 2.0
        assert wall["snapshot"]["speedup"] >= 5.0
        assert wall["cache"]["speedup"] >= 50.0
        assert baseline["memory"]["ratio"] >= 1.8
        # And pass the gate against itself.
        assert check_regression(copy.deepcopy(baseline), baseline) == []
