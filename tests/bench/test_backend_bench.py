"""The backend bench harness: payload shape and the regression gate."""

import copy
import json
from pathlib import Path

import pytest

from repro.bench.backends import (
    BENCH_WORKERS,
    MULTIPROC_SPEEDUP_FLOOR,
    check_regression,
    render_backend_report,
    run_backend_bench,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def good_payload():
    """Synthetic payload with healthy numbers for gate-logic tests."""

    def workload(name, speedup):
        return {
            "name": name,
            "num_vertices": 1000,
            "num_edges": 5000,
            "seed": 1,
            "sweeps": 9,
            "numpy_s": 0.5,
            "multiproc": {
                "elapsed_s": 0.6,
                "critical_path_s": 0.5 / speedup,
                "speedup_elapsed": 0.5 / 0.6,
                "speedup_critical": speedup,
                "dispatched_calls": 9,
                "inline_calls": 0,
                "tasks": 36,
            },
            "equivalent": True,
        }

    return {
        "schema": 1,
        "host": {"cpu_count": 4, "workers": 4, "repeats": 5},
        "backends_available": {"numpy": True, "multiproc": True, "numba": False},
        "workloads": [
            workload("small", 1.8),
            workload("medium", 2.0),
            workload("large", 2.2),
        ],
        "simulated_seconds": {
            "per_backend": {"numpy": 0.001, "multiproc": 0.001},
            "invariant": True,
        },
    }


class TestGateLogic:
    def test_healthy_payload_passes(self):
        assert check_regression(good_payload(), good_payload()) == []

    def test_floor_gates_largest_workload(self):
        current = good_payload()
        current["workloads"][-1]["multiproc"]["speedup_critical"] = (
            MULTIPROC_SPEEDUP_FLOOR - 0.1
        )
        failures = check_regression(current, good_payload())
        assert any("acceptance floor" in f for f in failures)

    def test_floor_ignores_small_workloads(self):
        current = good_payload()
        current["workloads"][0]["multiproc"]["speedup_critical"] = 0.9
        assert check_regression(current, good_payload()) == []

    def test_single_worker_run_fails_gate(self):
        current = good_payload()
        current["host"]["workers"] = 1
        failures = check_regression(current, good_payload())
        assert any("requires >= 2" in f for f in failures)

    def test_equivalence_flag_gates(self):
        current = good_payload()
        current["workloads"][1]["equivalent"] = False
        failures = check_regression(current, good_payload())
        assert any("bit-identical" in f for f in failures)

    def test_simulated_invariance_gates(self):
        current = good_payload()
        current["simulated_seconds"]["invariant"] = False
        failures = check_regression(current, good_payload())
        assert any("backend-invariant" in f for f in failures)

    def test_largest_regression_vs_baseline_fails(self):
        baseline = good_payload()
        baseline["workloads"][-1]["multiproc"]["speedup_critical"] = 4.0
        failures = check_regression(good_payload(), baseline)
        assert any("regressed" in f for f in failures)

    def test_small_regression_vs_baseline_tolerated(self):
        # Within tolerance: 2.2 vs 2.4 baseline.
        baseline = good_payload()
        baseline["workloads"][-1]["multiproc"]["speedup_critical"] = 2.4
        assert check_regression(good_payload(), baseline) == []

    def test_renamed_gated_workload_fails(self):
        baseline = good_payload()
        baseline["workloads"][-1]["name"] = "huge"
        failures = check_regression(good_payload(), baseline)
        assert any("gated workload changed" in f for f in failures)


class TestRender:
    def test_report_mentions_workloads_and_backends(self):
        text = render_backend_report(good_payload())
        for token in ("small", "medium", "large", "workers=4", "numpy"):
            assert token in text


class TestCommittedBaseline:
    @pytest.fixture(scope="class")
    def baseline(self):
        return json.loads(
            (REPO_ROOT / "BENCH_backends.json").read_text(encoding="utf-8")
        )

    def test_baseline_meets_the_acceptance_gate(self, baseline):
        # The committed baseline must satisfy its own gate: multiproc
        # beat numpy by the floor on the largest graph, at >= 2 workers,
        # with in-bench equivalence asserted.
        assert check_regression(copy.deepcopy(baseline), baseline) == []
        assert baseline["host"]["workers"] >= 2
        largest = baseline["workloads"][-1]
        assert largest["multiproc"]["speedup_critical"] >= MULTIPROC_SPEEDUP_FLOOR
        assert all(w["equivalent"] for w in baseline["workloads"])
        assert baseline["simulated_seconds"]["invariant"]

    def test_baseline_records_host_transparently(self, baseline):
        # The payload must not hide the measurement conditions: cpu
        # count, worker count, repeats, and both wall-clock views.
        assert set(baseline["host"]) == {"cpu_count", "workers", "repeats"}
        for workload in baseline["workloads"]:
            multi = workload["multiproc"]
            assert multi["elapsed_s"] > 0.0
            assert multi["critical_path_s"] > 0.0
            assert multi["speedup_elapsed"] == pytest.approx(
                workload["numpy_s"] / multi["elapsed_s"]
            )
            assert multi["speedup_critical"] == pytest.approx(
                workload["numpy_s"] / multi["critical_path_s"]
            )


class TestLivePayload:
    @pytest.fixture(scope="class")
    def payload(self):
        # One real run on tiny graphs: the full harness path — spawn,
        # shared-memory publication, in-bench equivalence assertions,
        # simulated-seconds invariance — just without the big graphs.
        workloads = (("tiny", 400, 1_600, 1), ("less_tiny", 800, 3_200, 2))
        return run_backend_bench(repeats=1, workers=2, workloads=workloads)

    def test_payload_shape(self, payload):
        assert payload["schema"] == 1
        assert payload["host"]["workers"] == 2
        assert [w["name"] for w in payload["workloads"]] == ["tiny", "less_tiny"]
        for workload in payload["workloads"]:
            assert workload["equivalent"] is True
            assert workload["sweeps"] >= 1
            assert workload["numpy_s"] > 0.0
            multi = workload["multiproc"]
            assert multi["critical_path_s"] > 0.0
            assert multi["speedup_critical"] > 0.0

    def test_simulated_seconds_invariant_in_live_run(self, payload):
        sim = payload["simulated_seconds"]
        assert sim["invariant"] is True
        assert set(sim["per_backend"]) == {"numpy", "multiproc"}

    def test_defaults_meet_gate_preconditions(self):
        assert BENCH_WORKERS >= 2
