"""Tests for JSON persistence of experiment artifacts."""

import json

import numpy as np
import pytest

from repro.bench import (
    ExperimentResult,
    RunRecord,
    load_json,
    result_from_dict,
    result_to_dict,
    save_json,
)
from repro.bench.serialization import record_to_dict


@pytest.fixture
def sample_result():
    record = RunRecord(
        dataset="PT",
        algorithm="PKMC",
        threads=32,
        status="ok",
        simulated_seconds=0.001,
        wall_seconds=0.2,
        iterations=4,
        density=27.0,
        extras={"history": [(4, 1)], "array": np.arange(3)},
    )
    return ExperimentResult(
        experiment="Exp-1",
        paper_artifact="Fig. 5",
        description="demo",
        headers=["dataset", "PKMC"],
        rows=[["PT", "0.001"]],
        notes=["a note"],
        records=[record],
    )


class TestRoundTrip:
    def test_dict_round_trip(self, sample_result):
        rebuilt = result_from_dict(result_to_dict(sample_result))
        assert rebuilt.experiment == sample_result.experiment
        assert rebuilt.rows == sample_result.rows
        assert rebuilt.notes == sample_result.notes
        assert rebuilt.records[0].dataset == "PT"
        assert rebuilt.records[0].simulated_seconds == 0.001

    def test_file_round_trip(self, sample_result, tmp_path):
        path = tmp_path / "result.json"
        save_json(sample_result, path)
        loaded = load_json(path)
        assert loaded.cell("PT", "PKMC") == "0.001"
        assert loaded.records[0].iterations == 4

    def test_json_is_valid(self, sample_result, tmp_path):
        path = tmp_path / "result.json"
        save_json(sample_result, path)
        data = json.loads(path.read_text())
        assert data["paper_artifact"] == "Fig. 5"

    def test_unserialisable_extras_dropped(self, sample_result):
        flat = record_to_dict(sample_result.records[0])
        assert "array" not in flat["extras"]  # ndarray silently dropped
        assert flat["extras"]["history"] == [(4, 1)]

    def test_real_experiment_round_trips(self, tmp_path):
        from repro.bench import run_exp6

        result = run_exp6(datasets=("AM",))
        path = tmp_path / "exp6.json"
        save_json(result, path)
        loaded = load_json(path)
        assert loaded.cell("PWC_1", "AM") == result.cell("PWC_1", "AM")
        assert len(loaded.records) == len(result.records)
