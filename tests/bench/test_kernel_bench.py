"""The kernel bench harness: payload shape and the regression gate."""

import copy
import json

import pytest

from repro.bench.kernels import check_regression, render_kernel_report, run_kernel_bench


@pytest.fixture(scope="module")
def tiny_payload():
    # A small workload keeps the suite fast; wall-clock speedups are noisy
    # at this size, so tests only assert structure and simulated costs.
    return run_kernel_bench(num_vertices=400, num_edges=1_200, repeats=1, threads=4)


def good_payload():
    """Synthetic payload with healthy numbers for gate-logic tests."""
    return {
        "schema": 1,
        "workload": {"num_vertices": 20_000, "num_edges_undirected": 100_000},
        "wall_clock": {
            "full_sweep": {"lexsort_s": 0.025, "sort_free_s": 0.009, "speedup": 2.8},
            "tail_sweeps": {
                "lexsort_full_s": 0.075,
                "frontier_s": 0.024,
                "speedup": 3.1,
            },
        },
        "simulated_seconds": {
            "pkmc_synchronous": {"frontier_s": 0.0009, "full_s": 0.0010},
            "pwc": {"frontier_s": 0.0004, "full_s": 0.0004},
        },
    }


class TestPayload:
    def test_structure(self, tiny_payload):
        assert tiny_payload["schema"] == 1
        wall = tiny_payload["wall_clock"]
        assert set(wall) == {"full_sweep", "tail_sweeps"}
        for section in wall.values():
            assert section["speedup"] > 0
        assert set(tiny_payload["simulated_seconds"]) == {
            "pkmc_synchronous",
            "pkmc_degree_order",
            "local",
            "pwc",
        }

    def test_frontier_simulated_cost_never_higher(self, tiny_payload):
        for solver, pair in tiny_payload["simulated_seconds"].items():
            assert pair["frontier_s"] <= pair["full_s"] * (1 + 1e-9), solver

    def test_payload_is_json_serialisable(self, tiny_payload):
        assert json.loads(json.dumps(tiny_payload)) == tiny_payload

    def test_report_renders(self, tiny_payload):
        text = render_kernel_report(tiny_payload)
        assert "full sweep" in text and "tail sweeps" in text
        assert "pwc" in text


class TestRegressionGate:
    def test_identical_healthy_payload_passes(self):
        assert check_regression(good_payload(), good_payload()) == []

    def test_tail_speedup_floor(self):
        current = good_payload()
        current["wall_clock"]["tail_sweeps"]["speedup"] = 1.5
        failures = check_regression(current, good_payload())
        assert any("acceptance floor" in f for f in failures)

    def test_wall_clock_ratio_regression(self):
        current = good_payload()
        current["wall_clock"]["full_sweep"]["speedup"] = 1.0
        failures = check_regression(current, good_payload())
        assert any("full_sweep speedup regressed" in f for f in failures)

    def test_small_wall_clock_noise_tolerated(self):
        current = good_payload()
        current["wall_clock"]["full_sweep"]["speedup"] *= 0.9  # within 25%
        current["wall_clock"]["tail_sweeps"]["speedup"] *= 0.9
        assert check_regression(current, good_payload()) == []

    def test_simulated_regression_fails(self):
        current = good_payload()
        pair = current["simulated_seconds"]["pkmc_synchronous"]
        pair["frontier_s"] = pair["frontier_s"] * 2
        pair["full_s"] = pair["full_s"] * 3
        failures = check_regression(current, good_payload())
        assert any("regressed vs baseline" in f for f in failures)

    def test_frontier_above_full_fails(self):
        current = good_payload()
        current["simulated_seconds"]["pwc"]["frontier_s"] = (
            current["simulated_seconds"]["pwc"]["full_s"] * 1.5
        )
        failures = check_regression(current, good_payload())
        assert any("exceeds the full re-scan" in f for f in failures)

    def test_missing_solver_fails(self):
        current = good_payload()
        del current["simulated_seconds"]["pwc"]
        failures = check_regression(current, good_payload())
        assert any("missing" in f for f in failures)

    def test_committed_baseline_is_well_formed(self):
        from pathlib import Path

        baseline_path = Path(__file__).parents[2] / "BENCH_kernels.json"
        baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
        assert baseline["schema"] == 1
        # The committed baseline must itself satisfy the acceptance bars.
        assert baseline["wall_clock"]["tail_sweeps"]["speedup"] >= 2.0
        for solver, pair in baseline["simulated_seconds"].items():
            assert pair["frontier_s"] <= pair["full_s"] * (1 + 1e-9), solver
        # And pass the gate against itself.
        assert check_regression(copy.deepcopy(baseline), baseline) == []
