"""Frontier sweeps reproduce full sweeps array-for-array, sweep-for-sweep."""

import numpy as np
import pytest

from repro.core.hindex import (
    degree_descending_order,
    h_index,
    inplace_sweep,
    synchronous_sweep,
)
from repro.graph import UndirectedGraph, chung_lu_undirected
from repro.kernels import (
    frontier_inplace_sweep,
    frontier_synchronous_sweep,
    gauss_seidel_batches,
)
from repro.runtime.simruntime import SimRuntime


def star(n=12):
    return UndirectedGraph.from_edges(n, [(0, i) for i in range(1, n)])


def path(n=15):
    return UndirectedGraph.from_edges(n, [(i, i + 1) for i in range(n - 1)])


def clique(n=8):
    return UndirectedGraph.from_edges(
        n, [(i, j) for i in range(n) for j in range(i + 1, n)]
    )


GRAPHS = {
    "chung_lu": lambda: chung_lu_undirected(250, 800, seed=3),
    "star": star,
    "path": path,
    "clique": clique,
}


def sequential_gauss_seidel(graph, h, order):
    """Plain per-vertex reference sweep (the semantics being preserved)."""
    for v in order:
        h[v] = h_index(h[graph.neighbors(v)])
    return h


@pytest.fixture(params=sorted(GRAPHS), ids=sorted(GRAPHS))
def graph(request):
    return GRAPHS[request.param]()


@pytest.fixture(params=[False, True], ids=["plain", "sanitize"])
def runtime(request):
    return SimRuntime(num_threads=4, sanitize=True) if request.param else None


class TestSynchronousFrontier:
    def test_per_sweep_equality_with_full_jacobi(self, graph, runtime):
        h_full = graph.degrees().astype(np.int64)
        h_front = h_full.copy()
        active = None
        for _ in range(graph.num_vertices + 2):
            h_full = synchronous_sweep(graph, h_full, runtime=runtime)
            h_front, active = frontier_synchronous_sweep(
                graph, h_front, frontier=active, runtime=runtime
            )
            assert np.array_equal(h_full, h_front)
            if active.size == 0:
                break
        # Drained frontier certifies the fixed point.
        assert np.array_equal(synchronous_sweep(graph, h_front), h_front)

    def test_empty_frontier_is_identity(self, graph):
        h = graph.degrees().astype(np.int64)
        new_h, nxt = frontier_synchronous_sweep(
            graph, h, frontier=np.empty(0, dtype=np.int64)
        )
        assert np.array_equal(new_h, h)
        assert nxt.size == 0

    def test_sanitizer_reports_no_race(self, graph):
        rt = SimRuntime(num_threads=4, sanitize=True)
        h = graph.degrees().astype(np.int64)
        h, active = frontier_synchronous_sweep(graph, h, runtime=rt)
        while active.size:
            h, active = frontier_synchronous_sweep(
                graph, h, frontier=active, runtime=rt
            )
        # Reaching here without ParforRaceError is the assertion; the
        # fixed point must still be correct.
        assert np.array_equal(synchronous_sweep(graph, h), h)


class TestGaussSeidelBatches:
    def test_batches_partition_the_order(self, graph):
        order = degree_descending_order(graph)
        batches = gauss_seidel_batches(graph, order)
        assert np.array_equal(np.concatenate(batches), order)

    def test_batch_members_pairwise_non_adjacent(self, graph):
        for batch in gauss_seidel_batches(graph):
            members = set(batch.tolist())
            for v in batch:
                assert members.isdisjoint(graph.neighbors(int(v)).tolist())


class TestInplaceFrontier:
    @pytest.mark.parametrize("ordered", [False, True], ids=["natural", "degree"])
    def test_per_sweep_equality_with_sequential_reference(self, graph, ordered):
        order = (
            degree_descending_order(graph)
            if ordered
            else np.arange(graph.num_vertices)
        )
        h_ref = graph.degrees().astype(np.int64)
        h_front = h_ref.copy()
        batches = gauss_seidel_batches(graph, order)
        dirty = None
        for _ in range(graph.num_vertices + 2):
            previous = h_ref.copy()
            sequential_gauss_seidel(graph, h_ref, order)
            h_front, dirty, processed = frontier_inplace_sweep(
                graph, h_front, dirty=dirty, batches=batches
            )
            assert np.array_equal(h_ref, h_front)
            if np.array_equal(previous, h_ref):
                break
        assert not dirty.any()

    def test_batched_inplace_sweep_matches_sequential(self, graph):
        # Satellite (b): the vectorised inplace_sweep is still Gauss-Seidel.
        order = degree_descending_order(graph)
        h_ref = sequential_gauss_seidel(
            graph, graph.degrees().astype(np.int64), order
        )
        h_vec = inplace_sweep(graph, graph.degrees().astype(np.int64), order=order)
        assert np.array_equal(h_ref, h_vec)

    def test_sanitized_and_plain_agree(self, graph):
        order = degree_descending_order(graph)
        rt = SimRuntime(num_threads=4, sanitize=True)
        h_plain = graph.degrees().astype(np.int64)
        h_san = h_plain.copy()
        dirty_p = dirty_s = None
        batches = gauss_seidel_batches(graph, order)
        for _ in range(graph.num_vertices + 2):
            h_plain, dirty_p, processed_p = frontier_inplace_sweep(
                graph, h_plain, dirty=dirty_p, batches=batches
            )
            h_san, dirty_s, processed_s = frontier_inplace_sweep(
                graph, h_san, dirty=dirty_s, batches=batches, runtime=rt
            )
            assert np.array_equal(h_plain, h_san)
            assert np.array_equal(np.sort(processed_p), np.sort(processed_s))
            if processed_p.size == 0:
                break

    def test_processed_shrinks_to_empty(self, graph):
        h = graph.degrees().astype(np.int64)
        dirty = None
        batches = gauss_seidel_batches(graph)
        sizes = []
        for _ in range(graph.num_vertices + 2):
            h, dirty, processed = frontier_inplace_sweep(
                graph, h, dirty=dirty, batches=batches
            )
            sizes.append(processed.size)
            if processed.size == 0:
                break
        assert sizes[-1] == 0
        assert sizes[0] == graph.num_vertices

class TestClampedSweeps:
    """clamp=True: monotone-decreasing iteration from any upper bound."""

    def converge_sync(self, graph, h, clamp):
        active = None
        for _ in range(graph.num_vertices + 2):
            h, active = frontier_synchronous_sweep(
                graph, h, frontier=active, clamp=clamp
            )
            if active.size == 0:
                return h
        raise AssertionError("sweep did not converge")

    def cores(self, graph):
        return self.converge_sync(graph, graph.degrees().astype(np.int64), False)

    def test_cold_start_is_unaffected(self, graph):
        # From the degrees the raw operator is already monotone
        # decreasing, so clamping changes nothing — sweep for sweep.
        h_plain = graph.degrees().astype(np.int64)
        h_clamp = h_plain.copy()
        active_plain = active_clamp = None
        for _ in range(graph.num_vertices + 2):
            h_plain, active_plain = frontier_synchronous_sweep(
                graph, h_plain, frontier=active_plain
            )
            h_clamp, active_clamp = frontier_synchronous_sweep(
                graph, h_clamp, frontier=active_clamp, clamp=True
            )
            assert np.array_equal(h_plain, h_clamp)
            assert np.array_equal(np.sort(active_plain), np.sort(active_clamp))
            if active_plain.size == 0:
                break

    def test_warm_non_degree_bound_converges_to_the_cores(self, graph):
        # A warm bound that is NOT the degree vector (cores + noise on a
        # few vertices): clamped iteration still lands exactly on the
        # fixed point.  This is the streaming rebuild's starting state.
        cores = self.cores(graph)
        rng = np.random.default_rng(0)
        warm = cores + rng.integers(0, 3, size=cores.size)
        np.minimum(warm, graph.degrees().astype(np.int64), out=warm)
        assert np.array_equal(self.converge_sync(graph, warm.copy(), True), cores)

    def test_clamped_inplace_sweep_matches(self, graph):
        cores = self.cores(graph)
        rng = np.random.default_rng(1)
        warm = cores + rng.integers(0, 3, size=cores.size)
        np.minimum(warm, graph.degrees().astype(np.int64), out=warm)
        h = warm.copy()
        dirty = None
        for _ in range(graph.num_vertices + 2):
            h, dirty, processed = frontier_inplace_sweep(
                graph, h, dirty=dirty, clamp=True
            )
            if not dirty.any():
                break
        assert np.array_equal(h, cores)

    def test_clamp_never_exceeds_the_start(self, graph):
        start = graph.degrees().astype(np.int64) + 5  # a loose upper bound
        h, active = frontier_synchronous_sweep(graph, start.copy(), clamp=True)
        assert np.all(h <= start)
        while active.size:
            prev = h.copy()
            h, active = frontier_synchronous_sweep(
                graph, h, frontier=active, clamp=True
            )
            assert np.all(h <= prev)
        assert np.array_equal(h, self.cores(graph))
