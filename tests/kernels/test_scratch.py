"""Memoized scratch buffers: cached, read-only, and never aliased."""

import numpy as np
import pytest

from repro.graph import DirectedGraph, UndirectedGraph, chung_lu_undirected


@pytest.fixture()
def graph():
    return chung_lu_undirected(120, 400, seed=5)


@pytest.fixture()
def digraph():
    return DirectedGraph.from_edges(
        6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 3)]
    )


class TestMemoization:
    def test_accessors_return_the_cached_object(self, graph):
        assert graph.degrees() is graph.degrees()
        assert graph.heads() is graph.heads()
        ptr1, rows1 = graph.hindex_bins()
        ptr2, rows2 = graph.hindex_bins()
        assert ptr1 is ptr2 and rows1 is rows2

    def test_directed_accessors_cached(self, digraph):
        assert digraph.out_degrees() is digraph.out_degrees()
        assert digraph.in_degrees() is digraph.in_degrees()

    def test_values_are_correct(self, graph):
        assert np.array_equal(graph.degrees(), np.diff(graph.indptr))
        expected_heads = np.repeat(
            np.arange(graph.num_vertices), np.diff(graph.indptr)
        )
        assert np.array_equal(graph.heads(), expected_heads)
        bin_ptr, bin_rows = graph.hindex_bins()
        assert np.array_equal(np.diff(bin_ptr), graph.degrees() + 1)
        assert np.array_equal(
            bin_rows, np.repeat(np.arange(graph.num_vertices), graph.degrees() + 1)
        )


class TestReadOnly:
    def test_writes_raise(self, graph):
        for buffer in (graph.degrees(), graph.heads(), *graph.hindex_bins()):
            with pytest.raises(ValueError):
                buffer[0] = 99

    def test_directed_writes_raise(self, digraph):
        for buffer in (digraph.out_degrees(), digraph.in_degrees()):
            with pytest.raises(ValueError):
                buffer[0] = 99

    def test_copy_is_writable(self, graph):
        mine = graph.degrees().copy()
        mine[0] = 123  # must not raise
        assert graph.degrees()[0] != 123 or mine[0] == graph.degrees()[0]


class TestDerivedGraphFreshness:
    """Regression (satellite f): derived graphs never alias parent caches."""

    def test_induced_subgraph_has_fresh_caches(self, graph):
        parent_heads = graph.heads()
        parent_degrees = graph.degrees()
        sub, original_ids = graph.induced_subgraph(np.arange(50))
        assert sub._scratch == {} or all(
            buf is not parent_heads and buf is not parent_degrees
            for buf in sub._scratch.values()
        )
        assert sub.heads() is not parent_heads
        assert sub.degrees() is not parent_degrees
        assert np.array_equal(sub.degrees(), np.diff(sub.indptr))
        assert np.array_equal(
            sub.heads(), np.repeat(np.arange(sub.num_vertices), sub.degrees())
        )

    def test_subgraph_from_edge_mask_has_fresh_caches(self, graph):
        parent_heads = graph.heads()
        mask = np.zeros(graph.num_edges, dtype=bool)
        mask[: graph.num_edges // 2] = True
        sub = graph.subgraph_from_edge_mask(mask)
        assert sub.heads() is not parent_heads
        assert np.array_equal(
            sub.heads(), np.repeat(np.arange(sub.num_vertices), sub.degrees())
        )

    def test_relabeled_has_fresh_caches(self, graph):
        parent_heads = graph.heads()
        parent_bins = graph.hindex_bins()
        rng = np.random.default_rng(0)
        perm = rng.permutation(graph.num_vertices)
        relabeled = graph.relabeled(perm)
        assert relabeled.heads() is not parent_heads
        assert relabeled.hindex_bins()[0] is not parent_bins[0]
        assert np.array_equal(
            np.sort(relabeled.degrees()), np.sort(graph.degrees())
        )

    def test_directed_subgraph_has_fresh_caches(self, digraph):
        parent_out = digraph.out_degrees()
        mask = np.ones(digraph.num_edges, dtype=bool)
        mask[0] = False
        sub = digraph.subgraph_from_edge_mask(mask)
        assert sub.out_degrees() is not parent_out
        assert int(sub.out_degrees().sum()) == sub.num_edges

    def test_parent_cache_unchanged_after_derivation(self, graph):
        before = graph.heads().copy()
        graph.induced_subgraph(np.arange(30))
        mask = np.zeros(graph.num_edges, dtype=bool)
        mask[::2] = True
        graph.subgraph_from_edge_mask(mask)
        assert np.array_equal(graph.heads(), before)


class TestEmptyGraphs:
    def test_empty_graph_buffers(self):
        g = UndirectedGraph.empty(4)
        assert g.degrees().tolist() == [0, 0, 0, 0]
        assert g.heads().size == 0
        bin_ptr, bin_rows = g.hindex_bins()
        assert bin_ptr.tolist() == [0, 1, 2, 3, 4]
        assert bin_rows.tolist() == [0, 1, 2, 3]
