"""The sort-free segmented h-index kernel agrees with the references."""

import numpy as np
import pytest

from repro.core.hindex import h_index
from repro.kernels import (
    concat_ranges,
    reference_segment_h_index,
    segment_h_index,
)


def random_segments(rng, num_segments, max_len, max_value):
    """Random CSR segmentation (including empty segments) plus values."""
    lens = rng.integers(0, max_len + 1, size=num_segments)
    seg_ptr = np.zeros(num_segments + 1, dtype=np.int64)
    np.cumsum(lens, out=seg_ptr[1:])
    values = rng.integers(0, max_value + 1, size=int(seg_ptr[-1]))
    return seg_ptr, values


class TestConcatRanges:
    def test_matches_naive_concatenation(self):
        rng = np.random.default_rng(7)
        starts = rng.integers(0, 100, size=40)
        lengths = rng.integers(0, 9, size=40)
        expected = np.concatenate(
            [np.arange(s, s + l) for s, l in zip(starts, lengths)]
            or [np.empty(0, dtype=np.int64)]
        )
        assert np.array_equal(concat_ranges(starts, lengths), expected)

    def test_empty_input(self):
        out = concat_ranges(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        assert out.size == 0

    def test_all_zero_lengths(self):
        out = concat_ranges(np.array([3, 9]), np.array([0, 0]))
        assert out.size == 0

    def test_interleaved_zero_lengths(self):
        out = concat_ranges(np.array([5, 2, 0, 7]), np.array([2, 0, 3, 1]))
        assert out.tolist() == [5, 6, 0, 1, 2, 7]


class TestSegmentHIndex:
    @pytest.mark.parametrize("seed", range(8))
    def test_fuzz_matches_lexsort_reference_and_scalar(self, seed):
        rng = np.random.default_rng(seed)
        seg_ptr, values = random_segments(
            rng,
            num_segments=int(rng.integers(1, 60)),
            max_len=int(rng.integers(1, 25)),
            max_value=int(rng.integers(0, 30)),
        )
        fast = segment_h_index(seg_ptr, values)
        assert np.array_equal(fast, reference_segment_h_index(seg_ptr, values))
        scalar = [
            h_index(values[seg_ptr[s]:seg_ptr[s + 1]])
            for s in range(seg_ptr.size - 1)
        ]
        assert fast.tolist() == scalar

    def test_empty_segments_give_zero(self):
        seg_ptr = np.array([0, 0, 3, 3])
        values = np.array([2, 2, 2])
        assert segment_h_index(seg_ptr, values).tolist() == [0, 2, 0]

    def test_all_zero_values(self):
        seg_ptr = np.array([0, 4, 6])
        values = np.zeros(6, dtype=np.int64)
        assert segment_h_index(seg_ptr, values).tolist() == [0, 0]

    def test_no_segments(self):
        assert segment_h_index(np.array([0]), np.empty(0, dtype=np.int64)).size == 0
        assert (
            reference_segment_h_index(np.array([0]), np.empty(0, dtype=np.int64)).size
            == 0
        )

    def test_values_above_segment_length_clip(self):
        # h-index of a 3-element segment is at most 3, however huge the values.
        seg_ptr = np.array([0, 3])
        values = np.array([100, 100, 100])
        assert segment_h_index(seg_ptr, values).tolist() == [3]

    def test_precomputed_rows_and_bins_match_adhoc(self):
        rng = np.random.default_rng(11)
        seg_ptr, values = random_segments(rng, 30, 12, 15)
        lens = np.diff(seg_ptr)
        seg_rows = np.repeat(np.arange(lens.size, dtype=np.int64), lens)
        bin_ptr = np.zeros(lens.size + 1, dtype=np.int64)
        np.cumsum(lens + 1, out=bin_ptr[1:])
        bin_rows = np.repeat(np.arange(lens.size, dtype=np.int64), lens + 1)
        assert np.array_equal(
            segment_h_index(seg_ptr, values),
            segment_h_index(
                seg_ptr, values, seg_rows=seg_rows, bins=(bin_ptr, bin_rows)
            ),
        )
