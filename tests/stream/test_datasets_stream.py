"""Sliding-window temporal streams: determinism, window invariants, errors."""

import numpy as np
import pytest

from repro.datasets import StreamBatch, sliding_window_stream
from repro.errors import DatasetError
from repro.graph import chung_lu_undirected


@pytest.fixture(scope="module")
def graph():
    return chung_lu_undirected(200, 700, seed=7)


def replayed_window(initial, batches):
    """Replay the stream over a set; assert every op is effective."""
    window = {tuple(edge) for edge in initial}
    assert len(window) == initial.shape[0]
    for batch in batches:
        for edge in batch.insertions:
            assert tuple(edge) not in window  # every arrival genuinely new
            window.add(tuple(edge))
        for edge in batch.deletions:
            assert tuple(edge) in window  # every expiry genuinely present
            window.remove(tuple(edge))
    return window


class TestDeterminism:
    def test_same_arguments_reproduce_the_stream(self, graph):
        first = sliding_window_stream(graph, batch_size=5, seed=9)
        second = sliding_window_stream(graph, batch_size=5, seed=9)
        assert np.array_equal(first[0], second[0])
        assert len(first[1]) == len(second[1])
        for left, right in zip(first[1], second[1]):
            assert left.step == right.step
            assert np.array_equal(left.insertions, right.insertions)
            assert np.array_equal(left.deletions, right.deletions)

    def test_seed_changes_the_timeline(self, graph):
        left, _ = sliding_window_stream(graph, batch_size=5, seed=0)
        right, _ = sliding_window_stream(graph, batch_size=5, seed=1)
        assert not np.array_equal(left, right)


class TestWindowModel:
    def test_window_size_is_constant(self, graph):
        initial, batches = sliding_window_stream(
            graph, window_fraction=0.75, batch_size=4, seed=2
        )
        assert initial.shape[0] == int(0.75 * graph.num_edges)
        window = replayed_window(initial, batches)
        assert len(window) == initial.shape[0]

    def test_batches_cover_the_tail_of_the_timeline(self, graph):
        initial, batches = sliding_window_stream(
            graph, window_fraction=0.8, batch_size=8, seed=2
        )
        m = graph.num_edges
        assert len(batches) == (m - initial.shape[0]) // 8
        assert all(batch.size == 16 for batch in batches)
        assert [batch.step for batch in batches] == list(range(len(batches)))

    def test_num_batches_truncates_the_stream(self, graph):
        _, batches = sliding_window_stream(
            graph, batch_size=4, num_batches=3, seed=2
        )
        assert len(batches) == 3

    def test_registry_abbreviation_is_accepted(self):
        initial, batches = sliding_window_stream(
            "PT", batch_size=16, num_batches=2, seed=0
        )
        assert initial.shape[0] > 0
        assert len(batches) == 2
        replayed_window(initial, batches)

    def test_stream_batch_size_property(self):
        batch = StreamBatch(
            step=0,
            insertions=np.zeros((3, 2), dtype=np.int64),
            deletions=np.zeros((2, 2), dtype=np.int64),
        )
        assert batch.size == 5


class TestValidation:
    def test_window_fraction_bounds(self, graph):
        for fraction in (0.0, 1.0, 1.5, -0.2):
            with pytest.raises(DatasetError, match="window_fraction"):
                sliding_window_stream(graph, window_fraction=fraction)

    def test_batch_size_must_be_positive(self, graph):
        with pytest.raises(DatasetError, match="batch_size"):
            sliding_window_stream(graph, batch_size=0)

    def test_too_many_batches_is_an_error(self, graph):
        with pytest.raises(DatasetError, match="at most"):
            sliding_window_stream(graph, batch_size=4, num_batches=10_000)

    def test_empty_window_is_an_error(self):
        tiny = chung_lu_undirected(30, 40, seed=1)
        with pytest.raises(DatasetError, match="empty"):
            sliding_window_stream(tiny, window_fraction=0.001)
