"""StreamSession: gating, reports, cache lineage, delta log, equivalence.

The session contract under test: mutations are validated atomically and
logged as a replayable delta; queries answer from the maintained k*-core
with a stamped streaming report; a mutation retires exactly the cached
fingerprints this session's graph has occupied; and both refresh modes
(incremental / rebuild) answer bit-identically over any stream.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import sliding_window_stream
from repro.errors import EngineError, StreamMutationError
from repro.graph import UndirectedGraph, chung_lu_undirected
from repro.store.memo import ResultCache
from repro.store.snapshot import load_delta, replay_delta
from repro.stream import StreamSession

EDGES = [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (1, 3), (4, 5)]


@pytest.fixture
def graph():
    return UndirectedGraph.from_edges(6, EDGES)


@pytest.fixture
def medium():
    return chung_lu_undirected(150, 500, seed=5)


class TestGating:
    def test_unknown_mode_is_rejected(self):
        with pytest.raises(EngineError, match="unknown streaming mode"):
            StreamSession(10, mode="lazy")

    def test_non_streaming_solver_is_rejected(self):
        # 'exact' is registered but its flow answer has no maintained form.
        with pytest.raises(EngineError, match="supports_streaming"):
            StreamSession(10, solver="exact")

    def test_modes_and_default_solver_construct(self):
        for mode in ("incremental", "rebuild"):
            session = StreamSession(10, mode=mode)
            assert session.mode == mode
            assert session.num_vertices == 10
            assert session.num_edges == 0


class TestApply:
    def test_counts_only_effective_mutations(self, graph):
        session = StreamSession.from_graph(graph)
        outcome = session.apply(
            insertions=[(0, 1), (0, 5), (0, 5)],  # dup of existing + dup in batch
            deletions=[(0, 5), (2, 5)],  # present, absent
        )
        assert outcome["inserted"] == 1
        assert outcome["deleted"] == 1
        # the log records only what actually changed, in order
        assert session.delta_log == ((+1, 0, 5), (-1, 0, 5))
        assert session.num_edges == graph.num_edges

    def test_invalid_batch_leaves_session_untouched(self, graph):
        session = StreamSession.from_graph(graph)
        before = session.num_edges
        with pytest.raises(StreamMutationError):
            session.apply(insertions=[(0, 4), (3, 3)])  # self-loop poisons batch
        with pytest.raises(StreamMutationError):
            session.apply(deletions=[(0, 1), (0, 99)])  # out-of-range id
        assert session.num_edges == before
        assert session.delta_log == ()

    def test_insertions_land_before_deletions(self, graph):
        session = StreamSession.from_graph(graph)
        outcome = session.apply(insertions=[(0, 4)], deletions=[(0, 4)])
        assert outcome == {"inserted": 1, "deleted": 1, "invalidated": 0}
        assert session.num_edges == graph.num_edges


class TestQueryReports:
    def test_report_carries_streaming_fields(self, medium):
        session = StreamSession.from_graph(medium)
        session.apply(insertions=[(0, 1)] if not medium.has_edge(0, 1) else [],
                      deletions=[(0, 1)] if medium.has_edge(0, 1) else [])
        result = session.query()
        report = result.report
        assert report is not None
        stats = session.stats()
        assert report.updates_applied == stats["updates_applied"]
        assert report.affected_vertices == stats["affected_total"]
        assert report.rebuilds == stats["rebuilds"]
        assert 0.0 <= report.incremental_fraction <= 1.0
        assert report.cache_hit is False

    def test_rebuild_mode_reports_zero_incremental_fraction(self, medium):
        session = StreamSession.from_graph(medium, mode="rebuild")
        session.k_star()
        result = session.query()
        assert result.report.incremental_fraction == 0.0
        assert result.report.rebuilds >= 1
        assert session.stats()["incremental_refreshes"] == 0

    def test_incremental_mode_uses_localized_refreshes(self, medium):
        session = StreamSession.from_graph(medium)
        session.k_star()  # the bulk load converges (rebuild is fine here)
        for u in range(5):
            edge = (u, u + 20)
            if medium.has_edge(*edge):
                session.apply(deletions=[edge])
            else:
                session.apply(insertions=[edge])
            session.k_star()
        stats = session.stats()
        assert stats["incremental_refreshes"] >= 5
        assert 0.0 < stats["incremental_fraction"] <= 1.0

    def test_query_matches_static_solver_surface(self, graph):
        session = StreamSession.from_graph(graph)
        result = session.query()
        assert result.k_star == session.k_star()
        assert result.density > 0


class TestCacheLineage:
    def test_repeat_query_hits_cache(self, graph):
        cache = ResultCache()
        session = StreamSession.from_graph(graph, cache=cache)
        first = session.query()
        second = session.query()
        assert first.report.cache_hit is False
        assert second.report.cache_hit is True
        assert np.array_equal(first.vertices, second.vertices)
        assert second.density == first.density

    def test_mutation_retires_exactly_the_session_lineage(self, graph):
        cache = ResultCache()
        other = StreamSession.from_graph(
            UndirectedGraph.from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 2)]),
            cache=cache,
        )
        other.query()  # a different graph's entry in the shared cache
        session = StreamSession.from_graph(graph, cache=cache)
        session.query()
        assert session.stats()["lineage_depth"] == 1

        outcome = session.apply(insertions=[(0, 4)])
        assert outcome["invalidated"] == 1
        assert cache.invalidated == 1
        assert session.stats()["lineage_depth"] == 0
        assert other.query().report.cache_hit is True  # foreign entry survives
        assert session.query().report.cache_hit is False

    def test_noop_batch_does_not_invalidate(self, graph):
        cache = ResultCache()
        session = StreamSession.from_graph(graph, cache=cache)
        session.query()
        outcome = session.apply(insertions=[(0, 1)], deletions=[(2, 5)])
        assert outcome == {"inserted": 0, "deleted": 0, "invalidated": 0}
        assert session.query().report.cache_hit is True

    def test_restored_graph_recovers_its_fingerprint(self, graph):
        # Mutate then restore: the content fingerprint returns to its
        # original value, so the restored state re-occupies the same key.
        cache = ResultCache()
        session = StreamSession.from_graph(graph, cache=cache)
        original = session.graph().fingerprint()
        session.query()
        session.apply(insertions=[(0, 4)])
        assert session.graph().fingerprint() != original
        session.apply(deletions=[(0, 4)])
        assert session.graph().fingerprint() == original
        # the lineage entry was retired, so this repopulates, then re-hits
        assert session.query().report.cache_hit is False
        assert session.query().report.cache_hit is True


class TestDeltaLog:
    def test_save_delta_requires_a_base(self):
        session = StreamSession(6)
        session.apply(insertions=EDGES)
        with pytest.raises(EngineError, match="base graph"):
            session.save_delta("unused.npz")

    def test_delta_round_trips_bit_identically(self, graph, tmp_path):
        session = StreamSession.from_graph(graph)
        session.apply(insertions=[(0, 4), (2, 4)], deletions=[(1, 3)])
        session.apply(deletions=[(2, 4)])
        path = tmp_path / "session.delta.npz"
        assert session.save_delta(path) == 4

        base_fp, ops, edges = load_delta(path)
        assert base_fp == graph.fingerprint()
        assert ops.tolist() == [1, 1, -1, -1]
        replayed = replay_delta(graph, path)
        live = session.graph()
        assert np.array_equal(replayed.indptr, live.indptr)
        assert np.array_equal(replayed.indices, live.indices)
        assert replayed.indptr.dtype == live.indptr.dtype
        assert replayed.indices.dtype == live.indices.dtype
        assert replayed.fingerprint() == live.fingerprint()

    def test_seed_edges_stay_out_of_the_log(self, graph):
        session = StreamSession.from_graph(graph)
        assert session.delta_log == ()
        assert session.stats()["delta_ops"] == 0


class TestModeEquivalence:
    """Incremental maintenance must be indistinguishable from rebuild."""

    def test_lockstep_over_a_sliding_window_stream(self, medium):
        initial, batches = sliding_window_stream(
            medium, window_fraction=0.7, batch_size=6, num_batches=12, seed=3
        )
        inc = StreamSession(medium.num_vertices, mode="incremental")
        reb = StreamSession(medium.num_vertices, mode="rebuild")
        inc.apply(insertions=initial)
        reb.apply(insertions=initial)
        for batch in batches:
            inc.apply(insertions=batch.insertions, deletions=batch.deletions)
            reb.apply(insertions=batch.insertions, deletions=batch.deletions)
            assert inc.k_star() == reb.k_star()
            assert np.array_equal(inc.core_numbers(), reb.core_numbers())
        left, right = inc.query(), reb.query()
        assert np.array_equal(left.vertices, right.vertices)
        assert left.density == right.density

    @given(seed=st.integers(0, 1_000), batch_size=st.integers(1, 9))
    @settings(max_examples=15, deadline=None)
    def test_fuzzed_streams_agree(self, seed, batch_size):
        graph = chung_lu_undirected(80, 260, seed=11)
        initial, batches = sliding_window_stream(
            graph, window_fraction=0.6, batch_size=batch_size,
            num_batches=min(6, (graph.num_edges * 2 // 5) // batch_size),
            seed=seed,
        )
        inc = StreamSession(graph.num_vertices, mode="incremental")
        reb = StreamSession(graph.num_vertices, mode="rebuild")
        inc.apply(insertions=initial)
        reb.apply(insertions=initial)
        for batch in batches:
            inc.apply(insertions=batch.insertions, deletions=batch.deletions)
            reb.apply(insertions=batch.insertions, deletions=batch.deletions)
            assert inc.k_star() == reb.k_star()
            assert np.array_equal(inc.core_numbers(), reb.core_numbers())
