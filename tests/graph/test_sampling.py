"""Unit tests for the edge-sampling protocol of Exp-4/Exp-8."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import (
    DEFAULT_FRACTIONS,
    edge_fraction_series,
    gnm_random_directed,
    gnm_random_undirected,
    sample_edges,
)


class TestSampleEdges:
    def test_fraction_one_returns_same_object(self):
        g = gnm_random_undirected(50, 100, seed=0)
        assert sample_edges(g, 1.0) is g

    def test_edge_count(self):
        g = gnm_random_undirected(50, 100, seed=0)
        assert sample_edges(g, 0.4, seed=1).num_edges == 40

    def test_vertex_set_preserved(self):
        g = gnm_random_undirected(50, 100, seed=0)
        assert sample_edges(g, 0.2, seed=1).num_vertices == 50

    def test_invalid_fraction(self):
        g = gnm_random_undirected(10, 20, seed=0)
        with pytest.raises(GraphError):
            sample_edges(g, 1.5)

    def test_directed_supported(self):
        d = gnm_random_directed(40, 120, seed=0)
        sampled = sample_edges(d, 0.5, seed=2)
        assert sampled.num_edges == 60


class TestSeries:
    def test_default_fractions(self):
        assert DEFAULT_FRACTIONS == (0.2, 0.4, 0.6, 0.8, 1.0)

    def test_series_sizes_monotone(self):
        g = gnm_random_undirected(60, 200, seed=3)
        series = edge_fraction_series(g, seed=4)
        sizes = [sub.num_edges for _, sub in series]
        assert sizes == sorted(sizes)
        assert sizes[-1] == 200

    def test_series_nested(self):
        g = gnm_random_directed(40, 100, seed=5)
        series = edge_fraction_series(g, fractions=(0.3, 0.7), seed=6)
        small = {tuple(e) for e in series[0][1].edges().tolist()}
        large = {tuple(e) for e in series[1][1].edges().tolist()}
        assert small <= large

    def test_series_deterministic(self):
        g = gnm_random_undirected(40, 100, seed=7)
        a = edge_fraction_series(g, seed=8)
        b = edge_fraction_series(g, seed=8)
        assert all(x[1] == y[1] for x, y in zip(a, b))

    def test_zero_fraction_rejected(self):
        g = gnm_random_undirected(10, 20, seed=0)
        with pytest.raises(GraphError):
            edge_fraction_series(g, fractions=(0.0, 1.0))
