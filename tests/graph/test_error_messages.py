"""Tests for the exception hierarchy and its messages."""

import pytest

from repro.errors import (
    AlgorithmError,
    DatasetError,
    EmptyGraphError,
    GraphError,
    GraphFormatError,
    ReproError,
    SimMemoryLimitExceeded,
    SimTimeLimitExceeded,
    SimulationError,
)


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc_type in (
            GraphError,
            GraphFormatError,
            EmptyGraphError,
            AlgorithmError,
            SimulationError,
            SimTimeLimitExceeded,
            SimMemoryLimitExceeded,
            DatasetError,
        ):
            assert issubclass(exc_type, ReproError)

    def test_format_error_is_graph_error(self):
        assert issubclass(GraphFormatError, GraphError)

    def test_limit_errors_are_simulation_errors(self):
        assert issubclass(SimTimeLimitExceeded, SimulationError)
        assert issubclass(SimMemoryLimitExceeded, SimulationError)

    def test_catching_base_catches_everything(self):
        with pytest.raises(ReproError):
            raise EmptyGraphError("no edges")


class TestBudgetExceptions:
    def test_time_limit_message_and_fields(self):
        error = SimTimeLimitExceeded(elapsed=12.5, limit=10.0)
        assert error.elapsed == 12.5
        assert error.limit == 10.0
        assert "12.5" in str(error)
        assert "10" in str(error)

    def test_memory_limit_message_in_gib(self):
        error = SimMemoryLimitExceeded(peak_bytes=2**31, limit_bytes=2**30)
        assert error.peak_bytes == 2**31
        assert "2.00 GiB" in str(error)
        assert "1.00 GiB" in str(error)
