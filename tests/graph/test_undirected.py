"""Unit tests for the undirected CSR graph."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph import UndirectedGraph, gnm_random_undirected


class TestConstruction:
    def test_from_edges_basic(self):
        g = UndirectedGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert g.num_vertices == 4
        assert g.num_edges == 3

    def test_duplicate_edges_collapsed(self):
        g = UndirectedGraph.from_edges(3, [(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1

    def test_self_loops_dropped(self):
        g = UndirectedGraph.from_edges(3, [(0, 0), (1, 1), (0, 1)])
        assert g.num_edges == 1

    def test_empty_graph(self):
        g = UndirectedGraph.empty(5)
        assert g.num_vertices == 5
        assert g.num_edges == 0
        assert g.density() == 0.0

    def test_zero_vertex_graph(self):
        g = UndirectedGraph.empty(0)
        assert g.num_vertices == 0
        assert g.max_degree() == 0

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(GraphError):
            UndirectedGraph.from_edges(2, [(0, 2)])

    def test_negative_endpoint_rejected(self):
        with pytest.raises(GraphError):
            UndirectedGraph.from_edges(2, [(-1, 0)])

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(GraphError):
            UndirectedGraph.from_edges(-1, [])

    def test_invalid_indptr_rejected(self):
        with pytest.raises(GraphError):
            UndirectedGraph(np.array([0, 5]), np.array([1, 0]))

    def test_odd_adjacency_rejected(self):
        with pytest.raises(GraphError):
            UndirectedGraph(np.array([0, 1]), np.array([0]))


class TestAccessors:
    def test_degrees(self, fig2_graph):
        degrees = fig2_graph.degrees()
        assert degrees.tolist() == [3, 3, 3, 4, 2, 2, 2, 1]

    def test_degree_scalar(self, fig2_graph):
        assert fig2_graph.degree(3) == 4
        assert fig2_graph.degree(7) == 1

    def test_max_degree(self, fig2_graph):
        assert fig2_graph.max_degree() == 4

    def test_neighbors_sorted(self, fig2_graph):
        assert fig2_graph.neighbors(3).tolist() == [0, 1, 2, 4]

    def test_has_edge(self, fig2_graph):
        assert fig2_graph.has_edge(0, 1)
        assert fig2_graph.has_edge(1, 0)
        assert not fig2_graph.has_edge(0, 7)

    def test_edges_canonical(self, fig2_graph):
        edges = fig2_graph.edges()
        assert edges.shape == (10, 2)
        assert np.all(edges[:, 0] < edges[:, 1])

    def test_iter_edges_matches_edges(self, fig2_graph):
        assert list(fig2_graph.iter_edges()) == [
            tuple(row) for row in fig2_graph.edges().tolist()
        ]

    def test_density(self, triangle_graph):
        assert triangle_graph.density() == 1.0

    def test_memory_bytes_positive(self, fig2_graph):
        assert fig2_graph.memory_bytes() > 0

    def test_memory_bytes_accounts_for_scratch(self):
        # Fresh instance: the module-scoped fixtures may already carry
        # scratch buffers from earlier tests.
        g = UndirectedGraph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        structural = g.memory_bytes(include_scratch=False)
        assert structural == g.indptr.nbytes + g.indices.nbytes
        assert g.memory_bytes() == structural

        expected = structural
        expected += g.degrees().nbytes
        assert g.memory_bytes() == expected
        expected += g.heads().nbytes
        assert g.memory_bytes() == expected
        bin_ptr, bin_rows = g.hindex_bins()
        expected += bin_ptr.nbytes + bin_rows.nbytes
        assert g.memory_bytes() == expected
        # Re-requesting cached buffers must not grow the accounting.
        g.degrees(), g.heads(), g.hindex_bins()
        assert g.memory_bytes() == expected
        assert g.memory_bytes(include_scratch=False) == structural


class TestDerivedGraphs:
    def test_induced_subgraph_of_clique(self, fig2_graph):
        sub, ids = fig2_graph.induced_subgraph([0, 1, 2, 3])
        assert ids.tolist() == [0, 1, 2, 3]
        assert sub.num_edges == 6  # the K4

    def test_induced_subgraph_relabels(self, fig2_graph):
        sub, ids = fig2_graph.induced_subgraph([3, 4, 5])
        assert sub.num_vertices == 3
        assert sub.num_edges == 2  # 3-4 and 4-5
        assert ids.tolist() == [3, 4, 5]

    def test_induced_subgraph_out_of_range(self, fig2_graph):
        with pytest.raises(GraphError):
            fig2_graph.induced_subgraph([99])

    def test_subgraph_from_edge_mask(self, triangle_graph):
        mask = np.array([True, False, True])
        sub = triangle_graph.subgraph_from_edge_mask(mask)
        assert sub.num_edges == 2
        assert sub.num_vertices == 3

    def test_subgraph_from_edge_mask_wrong_length(self, triangle_graph):
        with pytest.raises(GraphError):
            triangle_graph.subgraph_from_edge_mask(np.array([True]))

    def test_relabeled_is_isomorphic(self, fig2_graph):
        perm = np.array([7, 6, 5, 4, 3, 2, 1, 0])
        relabeled = fig2_graph.relabeled(perm)
        assert relabeled.num_edges == fig2_graph.num_edges
        assert sorted(relabeled.degrees().tolist()) == sorted(
            fig2_graph.degrees().tolist()
        )

    def test_relabeled_requires_bijection(self, triangle_graph):
        with pytest.raises(GraphError):
            triangle_graph.relabeled(np.array([0, 0, 1]))

    def test_equality(self, triangle_graph):
        same = UndirectedGraph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
        assert triangle_graph == same
        other = UndirectedGraph.from_edges(3, [(0, 1), (1, 2)])
        assert triangle_graph != other


class TestProperties:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_handshake_lemma(self, seed):
        g = gnm_random_undirected(20, 40, seed=seed)
        assert g.degrees().sum() == 2 * g.num_edges

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_neighbors_symmetric(self, seed):
        g = gnm_random_undirected(15, 30, seed=seed)
        for u, v in g.iter_edges():
            assert v in g.neighbors(u).tolist()
            assert u in g.neighbors(v).tolist()

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_edges_round_trip(self, seed):
        g = gnm_random_undirected(15, 30, seed=seed)
        rebuilt = UndirectedGraph.from_edges(g.num_vertices, g.edges())
        assert rebuilt == g
