"""Unit tests for edge-list I/O."""

import io

import pytest

from repro.errors import GraphFormatError
from repro.graph import (
    DirectedGraph,
    UndirectedGraph,
    edgelist_from_string,
    load_npz,
    read_directed_edgelist,
    read_undirected_edgelist,
    save_npz,
    write_edgelist,
)

SAMPLE = """\
# a comment
% konect-style comment
a b
b c 0.5 1234567
c a
"""


class TestReaders:
    def test_read_undirected(self):
        graph, labels = read_undirected_edgelist(io.StringIO(SAMPLE))
        assert graph.num_vertices == 3
        assert graph.num_edges == 3
        assert labels == ["a", "b", "c"]

    def test_read_directed(self):
        graph, labels = read_directed_edgelist(io.StringIO(SAMPLE))
        assert graph.num_edges == 3
        assert graph.has_edge(0, 1)  # a -> b
        assert not graph.has_edge(1, 0)

    def test_extra_columns_ignored(self):
        graph, _ = read_undirected_edgelist(io.StringIO("0 1 99 comment\n"))
        assert graph.num_edges == 1

    def test_blank_lines_skipped(self):
        graph, _ = read_undirected_edgelist(io.StringIO("\n\n0 1\n\n"))
        assert graph.num_edges == 1

    def test_single_column_rejected(self):
        with pytest.raises(GraphFormatError, match="two columns"):
            read_undirected_edgelist(io.StringIO("onlyone\n"))

    def test_read_from_path(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("0 1\n1 2\n", encoding="utf-8")
        graph, _ = read_undirected_edgelist(path)
        assert graph.num_edges == 2

    def test_edgelist_from_string_helper(self):
        graph, _ = edgelist_from_string("0 1\n1 2\n", directed=True)
        assert isinstance(graph, DirectedGraph)


class TestWriters:
    def test_round_trip_undirected(self, tmp_path):
        graph = UndirectedGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        path = tmp_path / "out.txt"
        write_edgelist(graph, path, header="demo")
        reread, labels = read_undirected_edgelist(path)
        assert reread.num_edges == graph.num_edges
        assert "demo" in path.read_text(encoding="utf-8")

    def test_round_trip_directed(self, tmp_path):
        graph = DirectedGraph.from_edges(3, [(2, 0), (0, 1)])
        path = tmp_path / "out.txt"
        write_edgelist(graph, path)
        reread, labels = read_directed_edgelist(path)
        # Labels are interned in file order; degrees must be isomorphic.
        assert reread.num_edges == graph.num_edges
        assert sorted(reread.out_degrees()) == sorted(graph.out_degrees())

    def test_write_to_stream(self):
        graph = UndirectedGraph.from_edges(2, [(0, 1)])
        buffer = io.StringIO()
        write_edgelist(graph, buffer)
        assert "0 1" in buffer.getvalue()


class TestNpz:
    def test_round_trip_undirected(self, tmp_path):
        graph = UndirectedGraph.from_edges(5, [(0, 1), (3, 4)])
        path = tmp_path / "g.npz"
        save_npz(graph, path)
        loaded = load_npz(path)
        assert isinstance(loaded, UndirectedGraph)
        assert loaded == graph

    def test_round_trip_directed(self, tmp_path):
        graph = DirectedGraph.from_edges(5, [(4, 0), (0, 1)])
        path = tmp_path / "d.npz"
        save_npz(graph, path)
        loaded = load_npz(path)
        assert isinstance(loaded, DirectedGraph)
        assert loaded == graph

    def test_missing_field_rejected(self, tmp_path):
        import numpy as np

        path = tmp_path / "bad.npz"
        np.savez_compressed(path, kind=np.array("undirected"))
        with pytest.raises(GraphFormatError):
            load_npz(path)
