"""Unit tests for the random-graph generators."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import (
    chung_lu_directed,
    chung_lu_undirected,
    gnm_random_directed,
    gnm_random_undirected,
    planted_dense_subgraph,
    planted_st_subgraph,
    powerlaw_weights,
)
from repro.graph.stats import powerlaw_exponent_estimate


class TestPowerlawWeights:
    def test_bounds_respected(self):
        weights = powerlaw_weights(5000, exponent=2.2, w_min=1.0, w_max=50.0, seed=0)
        assert weights.min() >= 1.0
        assert weights.max() <= 50.0

    def test_deterministic(self):
        a = powerlaw_weights(100, seed=3)
        b = powerlaw_weights(100, seed=3)
        assert np.array_equal(a, b)

    def test_empty(self):
        assert powerlaw_weights(0).size == 0

    def test_heavy_tail(self):
        weights = powerlaw_weights(20000, exponent=2.1, seed=1)
        # A power law has max far above the mean.
        assert weights.max() > 10 * weights.mean()


class TestGnm:
    def test_edge_count_close(self):
        g = gnm_random_undirected(100, 300, seed=0)
        assert g.num_edges == 300

    def test_deterministic(self):
        a = gnm_random_undirected(50, 100, seed=9)
        b = gnm_random_undirected(50, 100, seed=9)
        assert a == b

    def test_zero_edges(self):
        assert gnm_random_undirected(10, 0, seed=0).num_edges == 0

    def test_negative_rejected(self):
        with pytest.raises(GraphError):
            gnm_random_undirected(-1, 5)

    def test_directed_counts(self):
        d = gnm_random_directed(100, 400, seed=0)
        assert d.num_edges == 400
        assert d.num_vertices == 100


class TestChungLu:
    def test_undirected_target_edges(self):
        g = chung_lu_undirected(2000, 10000, seed=4)
        assert g.num_edges == 10000

    def test_degrees_heavy_tailed(self):
        g = chung_lu_undirected(5000, 30000, exponent=2.1, seed=5)
        alpha = powerlaw_exponent_estimate(g.degrees(), d_min=3)
        assert 1.4 < alpha < 3.5  # plausibly power-law

    def test_max_weight_caps_hubs(self):
        capped = chung_lu_undirected(5000, 30000, max_weight=30.0, seed=6)
        free = chung_lu_undirected(5000, 30000, max_weight=2000.0, seed=6)
        assert capped.max_degree() < free.max_degree()

    def test_directed_in_hub_heavier(self):
        d = chung_lu_directed(5000, 30000, out_exponent=2.6, in_exponent=2.0, seed=7)
        assert d.max_in_degree() > d.max_out_degree()


class TestPlanted:
    def test_planted_core_is_dense(self):
        graph, core = planted_dense_subgraph(
            500, 2000, core_size=20, core_probability=1.0, seed=8
        )
        sub, _ = graph.induced_subgraph(core)
        assert sub.num_edges == 20 * 19 // 2  # full clique at p=1.0

    def test_core_size_validation(self):
        with pytest.raises(GraphError):
            planted_dense_subgraph(10, 20, core_size=11)

    def test_planted_st_block_edges(self):
        graph, s, t = planted_st_subgraph(
            400, 1500, s_size=10, t_size=12, block_probability=1.0, seed=9
        )
        assert s.size == 10 and t.size == 12
        block = graph.st_induced_subgraph(s, t)
        assert block.num_edges >= 10 * 12  # all block pairs present

    def test_planted_st_validation(self):
        with pytest.raises(GraphError):
            planted_st_subgraph(10, 20, s_size=6, t_size=6)

    def test_planted_deterministic(self):
        a, sa = planted_dense_subgraph(300, 900, core_size=15, seed=10)
        b, sb = planted_dense_subgraph(300, 900, core_size=15, seed=10)
        assert a == b
        assert np.array_equal(sa, sb)
