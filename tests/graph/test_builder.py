"""Unit tests for the incremental graph builders."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import DirectedGraphBuilder, GraphBuilder


class TestGraphBuilder:
    def test_labels_interned_in_order(self):
        builder = GraphBuilder()
        builder.add_edge("x", "y").add_edge("y", "z")
        graph, labels = builder.build_with_labels()
        assert labels == ["x", "y", "z"]
        assert graph.num_edges == 2

    def test_integer_like_labels(self):
        builder = GraphBuilder()
        builder.add_edge(10, 20).add_edge(20, 30)
        graph, labels = builder.build_with_labels()
        assert labels == [10, 20, 30]
        assert graph.num_vertices == 3

    def test_mixed_type_tokens_are_distinct_vertices(self):
        # Dict semantics, not textual rendering: int 1 != str "1".
        builder = GraphBuilder()
        builder.add_edge(1, "1").add_edge("1", 2)
        graph, labels = builder.build_with_labels()
        assert labels == [1, "1", 2]
        assert graph.num_vertices == 3
        assert graph.num_edges == 2

    def test_bool_and_int_tokens_collide_first_seen_label_wins(self):
        # True == 1 and hash(True) == hash(1), so they intern to one
        # vertex; the stored label is the first token seen.
        builder = GraphBuilder()
        builder.add_edge(True, 0).add_edge(1, 2)
        graph, labels = builder.build_with_labels()
        assert labels == [True, 0, 2]
        assert graph.num_vertices == 3
        assert graph.has_edge(0, 2)  # the "1" endpoint is vertex True

    def test_bulk_ids(self):
        builder = GraphBuilder()
        builder.add_edges_from_ids(np.array([[0, 1], [1, 2]]), num_vertices=5)
        graph = builder.build()
        assert graph.num_vertices == 5
        assert graph.num_edges == 2

    def test_bulk_growth_beyond_initial_capacity(self):
        builder = GraphBuilder()
        edges = np.stack(
            [np.arange(3000), np.arange(3000) + 1], axis=1
        )
        builder.add_edges_from_ids(edges, num_vertices=3001)
        assert builder.build().num_edges == 3000

    def test_many_single_appends(self):
        builder = GraphBuilder()
        for i in range(2000):
            builder.add_edge(i, i + 1)
        assert builder.num_pending_edges() == 2000
        assert builder.build().num_edges == 2000

    def test_mixing_modes_rejected(self):
        builder = GraphBuilder()
        builder.add_edge("a", "b")
        with pytest.raises(GraphError):
            builder.add_edges_from_ids(np.array([[0, 1]]), num_vertices=2)

    def test_duplicate_edges_deduped_at_build(self):
        builder = GraphBuilder()
        builder.add_edge("a", "b").add_edge("b", "a")
        assert builder.build().num_edges == 1

    def test_empty_build(self):
        assert GraphBuilder().build().num_edges == 0


class TestDirectedGraphBuilder:
    def test_direction_preserved(self):
        builder = DirectedGraphBuilder()
        builder.add_edge("a", "b").add_edge("b", "a")
        graph, labels = builder.build_with_labels()
        assert graph.num_edges == 2
        assert labels == ["a", "b"]

    def test_bulk_ids(self):
        builder = DirectedGraphBuilder()
        builder.add_edges_from_ids(np.array([[2, 0], [0, 1]]), num_vertices=3)
        graph = builder.build()
        assert graph.has_edge(2, 0)
        assert not graph.has_edge(0, 2)

    def test_mixing_modes_rejected(self):
        builder = DirectedGraphBuilder()
        builder.add_edge("a", "b")
        with pytest.raises(GraphError):
            builder.add_edges_from_ids(np.array([[0, 1]]), num_vertices=2)

    def test_explicit_vertex_count_takes_max(self):
        builder = DirectedGraphBuilder()
        builder.add_edges_from_ids(np.array([[0, 1]]), num_vertices=4)
        builder.add_edges_from_ids(np.array([[2, 3]]), num_vertices=10)
        assert builder.build().num_vertices == 10
