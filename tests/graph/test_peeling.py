"""Unit tests for the bucket queue and peel-state helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph import (
    DirectedGraph,
    DirectedPeelState,
    MinDegreeBucketQueue,
    UndirectedGraph,
    VertexPeelState,
    gnm_random_undirected,
)


class TestBucketQueue:
    def test_pop_order(self):
        queue = MinDegreeBucketQueue(np.array([3, 1, 2, 1]))
        popped = [queue.pop_min() for _ in range(4)]
        keys = [k for _, k in popped]
        assert keys == sorted(keys)

    def test_decrease_key(self):
        queue = MinDegreeBucketQueue(np.array([5, 5, 5]))
        queue.decrease_key(2)
        queue.decrease_key(2)
        vertex, key = queue.pop_min()
        assert vertex == 2
        assert key == 3

    def test_decrease_after_pop_is_noop(self):
        queue = MinDegreeBucketQueue(np.array([1, 2]))
        vertex, _ = queue.pop_min()
        queue.decrease_key(vertex)  # must not corrupt the structure
        assert queue.pop_min()[0] != vertex

    def test_decrease_at_zero_is_noop(self):
        queue = MinDegreeBucketQueue(np.array([0, 1]))
        queue.decrease_key(0)
        assert queue.pop_min() == (0, 0)

    def test_empty_pop_raises(self):
        queue = MinDegreeBucketQueue(np.array([], dtype=np.int64))
        with pytest.raises(GraphError):
            queue.pop_min()

    def test_negative_keys_rejected(self):
        with pytest.raises(GraphError):
            MinDegreeBucketQueue(np.array([-1]))

    def test_len_and_peek(self):
        queue = MinDegreeBucketQueue(np.array([4, 2]))
        assert len(queue) == 2
        assert queue.peek_min_key() == 2

    @given(st.lists(st.integers(0, 30), min_size=1, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_pop_sequence_sorted_without_decreases(self, keys):
        queue = MinDegreeBucketQueue(np.array(keys))
        popped = [queue.pop_min()[1] for _ in range(len(keys))]
        assert popped == sorted(keys)


class TestVertexPeelState:
    def test_remove_updates_degrees(self, fig2_graph):
        state = VertexPeelState(fig2_graph)
        removed = state.remove_vertex(3)  # hub of the K4 + tail
        assert removed == 4
        assert state.degree[0] == 2
        assert state.num_alive_edges == 6

    def test_double_remove_noop(self, triangle_graph):
        state = VertexPeelState(triangle_graph)
        assert state.remove_vertex(0) == 2
        assert state.remove_vertex(0) == 0

    def test_density_tracking(self, triangle_graph):
        state = VertexPeelState(triangle_graph)
        assert state.density() == 1.0
        state.remove_vertex(0)
        assert state.density() == pytest.approx(1 / 2)

    def test_remove_batch(self, fig2_graph):
        state = VertexPeelState(fig2_graph)
        removed = state.remove_vertices(np.array([4, 5, 6, 7]))
        assert removed == 4
        assert state.alive_vertices().tolist() == [0, 1, 2, 3]

    def test_peel_to_empty(self):
        g = gnm_random_undirected(10, 20, seed=1)
        state = VertexPeelState(g)
        state.remove_vertices(np.arange(10))
        assert state.num_alive_edges == 0
        assert state.num_alive_vertices == 0


class TestDirectedPeelState:
    def test_remove_from_s_kills_out_edges(self, fig3_graph):
        state = DirectedPeelState(fig3_graph)
        removed = state.remove_from_s(1)  # u2 has 5 out-edges
        assert removed == 5
        assert state.din[4] == 1

    def test_remove_from_t_kills_in_edges(self, fig3_graph):
        state = DirectedPeelState(fig3_graph)
        removed = state.remove_from_t(7)  # v4 has 3 in-edges
        assert removed == 3
        assert state.dout[3] == 0

    def test_remove_edge(self, fig3_graph):
        state = DirectedPeelState(fig3_graph)
        assert state.remove_edge(0)
        assert not state.remove_edge(0)
        assert state.num_alive_edges == fig3_graph.num_edges - 1

    def test_s_and_t_vertices(self, fig3_graph):
        state = DirectedPeelState(fig3_graph)
        assert state.s_vertices().tolist() == [0, 1, 2, 3]
        assert state.t_vertices().tolist() == [4, 5, 6, 7, 8]

    def test_density(self, fig3_graph):
        state = DirectedPeelState(fig3_graph)
        expected = 11 / np.sqrt(4 * 5)
        assert state.density() == pytest.approx(expected)

    def test_vertex_in_both_sides(self):
        d = DirectedGraph.from_edges(3, [(0, 1), (1, 2), (2, 0)])
        state = DirectedPeelState(d)
        state.remove_from_s(1)
        # vertex 1 still counts on the T side (edge 0 -> 1 alive).
        assert 1 in state.t_vertices().tolist()
