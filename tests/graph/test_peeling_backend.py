"""Pin the decision that peeling stays inline (docs/performance.md).

Two halves: the array backend must be *irrelevant* to peeling results
(bit-identical under numpy and multiproc), and the peeling module must
stay free of backend dispatch — its bucket-queue loop is data-dependent
and strictly sequential, so routing it through the pool would change
removal order and break bit-identity.
"""

import inspect

import numpy as np
import pytest

from repro.backends import use_backend
from repro.engine import ExecutionContext
from repro.engine import run as engine_run
from repro.graph import peeling
from repro.graph.generators import chung_lu_undirected
from repro.graph.peeling import MinDegreeBucketQueue


@pytest.fixture(scope="module")
def graph():
    return chung_lu_undirected(400, 1_800, seed=81)


class TestBackendIrrelevance:
    @pytest.mark.parametrize("backend", ["numpy", "multiproc"])
    def test_charikar_bit_identical_across_backends(self, graph, backend):
        reference = engine_run("charikar", graph, ExecutionContext())
        with use_backend(backend):
            result = engine_run(
                "charikar", graph, ExecutionContext(backend=backend)
            )
        assert result.density == reference.density
        assert np.array_equal(result.vertices, reference.vertices)
        assert result.vertices.dtype == reference.vertices.dtype

    def test_bucket_queue_order_is_deterministic(self, graph):
        orders = []
        for _ in range(2):
            queue = MinDegreeBucketQueue(graph.degrees())
            orders.append([queue.pop_min()[0] for _ in range(20)])
        assert orders[0] == orders[1]


class TestStaysInline:
    def test_peeling_module_has_no_backend_dispatch(self):
        source = inspect.getsource(peeling)
        assert "get_backend" not in source
        assert "use_backend" not in source
        assert "repro.backends" not in source

    def test_rationale_is_documented(self):
        from pathlib import Path

        import repro

        doc = Path(repro.__file__).parents[2] / "docs" / "performance.md"
        text = doc.read_text(encoding="utf-8")
        assert "Why the peeling kernels stay inline" in text
