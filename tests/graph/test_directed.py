"""Unit tests for the directed dual-CSR graph."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph import DirectedGraph, gnm_random_directed


class TestConstruction:
    def test_from_edges_basic(self):
        d = DirectedGraph.from_edges(3, [(0, 1), (1, 2)])
        assert d.num_vertices == 3
        assert d.num_edges == 2

    def test_duplicates_collapsed(self):
        d = DirectedGraph.from_edges(2, [(0, 1), (0, 1)])
        assert d.num_edges == 1

    def test_antiparallel_edges_kept(self):
        d = DirectedGraph.from_edges(2, [(0, 1), (1, 0)])
        assert d.num_edges == 2

    def test_self_loops_dropped(self):
        d = DirectedGraph.from_edges(2, [(0, 0), (0, 1)])
        assert d.num_edges == 1

    def test_empty(self):
        d = DirectedGraph.empty(4)
        assert d.num_vertices == 4
        assert d.num_edges == 0

    def test_out_of_range_rejected(self):
        with pytest.raises(GraphError):
            DirectedGraph.from_edges(2, [(0, 5)])

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(GraphError):
            DirectedGraph(3, np.array([0]), np.array([1, 2]))


class TestAccessors:
    def test_out_in_degrees(self, fig3_graph):
        assert fig3_graph.out_degrees().tolist() == [3, 5, 2, 1, 0, 0, 0, 0, 0]
        assert fig3_graph.in_degrees().tolist() == [0, 0, 0, 0, 2, 2, 3, 3, 1]

    def test_degree_scalars(self, fig3_graph):
        assert fig3_graph.out_degree(1) == 5
        assert fig3_graph.in_degree(7) == 3

    def test_max_degrees(self, fig3_graph):
        assert fig3_graph.max_out_degree() == 5
        assert fig3_graph.max_in_degree() == 3
        assert fig3_graph.max_degree() == 5

    def test_neighbors(self, fig3_graph):
        assert fig3_graph.out_neighbors(0).tolist() == [4, 5, 6]
        assert fig3_graph.in_neighbors(6).tolist() == [0, 1, 2]

    def test_has_edge_directionality(self, fig3_graph):
        assert fig3_graph.has_edge(0, 4)
        assert not fig3_graph.has_edge(4, 0)

    def test_edge_ids_consistent(self, fig3_graph):
        # out_edge_ids must map each out-CSR slot to the right edge row.
        edges = fig3_graph.edges()
        for v in range(fig3_graph.num_vertices):
            lo, hi = fig3_graph.out_indptr[v], fig3_graph.out_indptr[v + 1]
            for slot in range(lo, hi):
                edge_id = fig3_graph.out_edge_ids[slot]
                assert edges[edge_id, 0] == v
                assert edges[edge_id, 1] == fig3_graph.out_indices[slot]

    def test_in_edge_ids_consistent(self, fig3_graph):
        edges = fig3_graph.edges()
        for v in range(fig3_graph.num_vertices):
            lo, hi = fig3_graph.in_indptr[v], fig3_graph.in_indptr[v + 1]
            for slot in range(lo, hi):
                edge_id = fig3_graph.in_edge_ids[slot]
                assert edges[edge_id, 1] == v
                assert edges[edge_id, 0] == fig3_graph.in_indices[slot]

    def test_density_definition(self, fig3_graph):
        # S = {u1, u2} (0, 1), T = {v1, v2, v3} (4, 5, 6): 6 edges.
        rho = fig3_graph.density([0, 1], [4, 5, 6])
        assert rho == pytest.approx(6 / np.sqrt(2 * 3))

    def test_density_empty_side(self, fig3_graph):
        assert fig3_graph.density([], [4]) == 0.0

    def test_density_overlapping_sets(self):
        d = DirectedGraph.from_edges(2, [(0, 1), (1, 0)])
        assert d.density([0, 1], [0, 1]) == pytest.approx(2 / 2)


class TestDerivedGraphs:
    def test_reversed(self, fig3_graph):
        rev = fig3_graph.reversed()
        assert rev.num_edges == fig3_graph.num_edges
        assert rev.has_edge(4, 0)
        assert not rev.has_edge(0, 4)

    def test_reversed_twice_identity(self, fig3_graph):
        assert fig3_graph.reversed().reversed() == fig3_graph

    def test_subgraph_from_edge_mask(self, fig3_graph):
        mask = np.zeros(fig3_graph.num_edges, dtype=bool)
        mask[:3] = True
        sub = fig3_graph.subgraph_from_edge_mask(mask)
        assert sub.num_edges == 3

    def test_induced_subgraph(self, fig3_graph):
        sub, ids = fig3_graph.induced_subgraph([0, 1, 4, 5, 6])
        assert sub.num_edges == 6
        assert ids.tolist() == [0, 1, 4, 5, 6]

    def test_st_induced_subgraph(self, fig3_graph):
        sub = fig3_graph.st_induced_subgraph([0, 1], [4, 5, 6])
        assert sub.num_edges == 6
        assert sub.num_vertices == fig3_graph.num_vertices

    def test_to_undirected(self):
        d = DirectedGraph.from_edges(3, [(0, 1), (1, 0), (1, 2)])
        g = d.to_undirected()
        assert g.num_edges == 2  # 0-1 collapses

    def test_equality_order_independent(self):
        a = DirectedGraph.from_edges(3, [(0, 1), (1, 2)])
        b = DirectedGraph.from_edges(3, [(1, 2), (0, 1)])
        assert a == b


class TestProperties:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_degree_sums_match_edges(self, seed):
        d = gnm_random_directed(15, 40, seed=seed)
        assert d.out_degrees().sum() == d.num_edges
        assert d.in_degrees().sum() == d.num_edges

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_reverse_swaps_degree_arrays(self, seed):
        d = gnm_random_directed(12, 30, seed=seed)
        rev = d.reversed()
        assert np.array_equal(rev.out_degrees(), d.in_degrees())
        assert np.array_equal(rev.in_degrees(), d.out_degrees())

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_edges_round_trip(self, seed):
        d = gnm_random_directed(12, 30, seed=seed)
        rebuilt = DirectedGraph.from_edges(d.num_vertices, d.edges())
        assert rebuilt == d
