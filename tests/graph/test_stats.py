"""Unit tests for graph statistics helpers."""

import numpy as np
import pytest

from repro.graph import (
    DirectedGraph,
    UndirectedGraph,
    degree_histogram,
    powerlaw_exponent_estimate,
    summarize,
    summarize_directed,
)


class TestSummaries:
    def test_summarize(self, fig2_graph):
        summary = summarize(fig2_graph)
        assert summary.num_vertices == 8
        assert summary.num_edges == 10
        assert summary.max_degree == 4
        assert summary.density == pytest.approx(10 / 8)

    def test_summarize_empty(self):
        summary = summarize(UndirectedGraph.empty(0))
        assert summary.mean_degree == 0.0

    def test_summarize_directed(self, fig3_graph):
        summary = summarize_directed(fig3_graph)
        assert summary.max_out_degree == 5
        assert summary.max_in_degree == 3
        assert summary.num_edges == 11

    def test_as_row_keys(self, fig2_graph):
        row = summarize(fig2_graph).as_row()
        assert set(row) == {"|V|", "|E|", "d_max", "mean_deg", "rho"}

    def test_directed_as_row_keys(self, fig3_graph):
        row = summarize_directed(fig3_graph).as_row()
        assert set(row) == {"|V|", "|E|", "d+_max", "d-_max", "mean_deg"}


class TestHistogramAndTail:
    def test_degree_histogram(self, fig2_graph):
        hist = degree_histogram(fig2_graph)
        # degrees: [3, 3, 3, 4, 2, 2, 2, 1]
        assert hist.tolist() == [0, 1, 3, 3, 1]

    def test_histogram_sums_to_n(self, fig2_graph):
        assert degree_histogram(fig2_graph).sum() == fig2_graph.num_vertices

    def test_hill_estimator_on_pareto(self):
        # Integer (degree-like) Pareto sample; the estimator's d_min - 0.5
        # shift is the standard discrete continuity correction.
        rng = np.random.default_rng(0)
        alpha = 2.5
        continuous = (1 - rng.random(50_000)) ** (-1 / (alpha - 1))
        sample = np.floor(continuous + 0.5)
        estimate = powerlaw_exponent_estimate(sample, d_min=2)
        assert estimate == pytest.approx(alpha, abs=0.3)

    def test_hill_estimator_insufficient_data(self):
        assert np.isnan(powerlaw_exponent_estimate(np.array([1.0])))
