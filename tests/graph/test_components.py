"""Tests for connected-component helpers."""

import numpy as np
import pytest

from repro.graph import (
    DirectedGraph,
    UndirectedGraph,
    component_of_vertices,
    connected_components,
    densest_component,
    gnm_random_undirected,
    weakly_connected_components,
)


@pytest.fixture
def two_triangles():
    """Two disjoint triangles: {0,1,2} and {3,4,5}, plus isolated 6."""
    return UndirectedGraph.from_edges(
        7, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]
    )


class TestConnectedComponents:
    def test_two_triangles(self, two_triangles):
        labels = connected_components(two_triangles)
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4] == labels[5]
        assert labels[0] != labels[3]
        assert labels[6] not in (labels[0], labels[3])

    def test_connected_graph_single_label(self, fig2_graph):
        labels = connected_components(fig2_graph)
        assert np.unique(labels).size == 1

    def test_empty_graph(self):
        assert connected_components(UndirectedGraph.empty(0)).size == 0

    def test_edgeless_graph_all_singletons(self):
        labels = connected_components(UndirectedGraph.empty(4))
        assert np.unique(labels).size == 4

    def test_weak_components_on_digraph(self):
        d = DirectedGraph.from_edges(4, [(0, 1), (2, 3)])
        labels = weakly_connected_components(d)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_matches_networkx(self):
        import networkx as nx

        g = gnm_random_undirected(30, 25, seed=5)
        labels = connected_components(g)
        nx_graph = nx.Graph(list(map(tuple, g.edges().tolist())))
        nx_graph.add_nodes_from(range(g.num_vertices))
        for component in nx.connected_components(nx_graph):
            members = sorted(component)
            assert np.unique(labels[members]).size == 1


class TestComponentSplitting:
    def test_split_core_like_set(self, two_triangles):
        groups = component_of_vertices(two_triangles, np.arange(6))
        assert len(groups) == 2
        assert sorted(map(tuple, (g.tolist() for g in groups))) == [
            (0, 1, 2), (3, 4, 5),
        ]

    def test_empty_selection(self, two_triangles):
        assert component_of_vertices(two_triangles, np.array([])) == []

    def test_largest_first(self, fig2_graph):
        groups = component_of_vertices(fig2_graph, np.array([0, 1, 2, 6, 7]))
        assert groups[0].tolist() == [0, 1, 2]
        assert groups[1].tolist() == [6, 7]

    def test_densest_component(self):
        # A triangle (rho = 1) and a single edge (rho = 0.5).
        g = UndirectedGraph.from_edges(5, [(0, 1), (1, 2), (0, 2), (3, 4)])
        vertices, density = densest_component(g, np.arange(5))
        assert vertices.tolist() == [0, 1, 2]
        assert density == 1.0

    def test_densest_component_of_multi_component_kstar_core(self):
        # Two disjoint K4s: both are components of the 3-core; each is a
        # valid 2-approximation, as the paper notes.
        edges = [(i, j) for i in range(4) for j in range(i + 1, 4)]
        edges += [(i + 4, j + 4) for i in range(4) for j in range(i + 1, 4)]
        g = UndirectedGraph.from_edges(8, edges)
        from repro.core import pkmc

        core = pkmc(g)
        assert core.num_vertices == 8  # both components in the k*-core
        groups = component_of_vertices(g, core.vertices)
        assert len(groups) == 2
        vertices, density = densest_component(g, core.vertices)
        assert density == pytest.approx(6 / 4)
