"""Smoke tests: every example script must parse, and the fast ones run."""

import ast
import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in EXAMPLE_FILES}
    assert "quickstart.py" in names
    assert len(names) >= 4  # quickstart + >= 3 domain scenarios


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_parses(path):
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source)
    # Every example must be documented and runnable as a script.
    assert ast.get_docstring(tree), path.name
    assert "__main__" in source, path.name


def test_quickstart_runs(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "PKMC" in out
    assert "approximation ratio" in out
    assert "speedup" in out


def test_fake_follower_example_runs(capsys):
    runpy.run_path(
        str(EXAMPLES_DIR / "fake_follower_detection.py"), run_name="__main__"
    )
    out = capsys.readouterr().out
    assert "PWC found" in out
    assert "100%" in out  # the ring is recovered exactly


def test_serve_traffic_example_runs(capsys):
    runpy.run_path(
        str(EXAMPLES_DIR / "serve_traffic.py"), run_name="__main__"
    )
    out = capsys.readouterr().out
    assert "queries answered by" in out
    assert "queue never grew past" in out


def test_distributed_example_runs(capsys):
    runpy.run_path(
        str(EXAMPLES_DIR / "distributed_study.py"), run_name="__main__"
    )
    out = capsys.readouterr().out
    assert "shared memory" in out
    assert "saved by stopping early" in out
