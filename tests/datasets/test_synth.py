"""Tests for the composable replica builder (background + clique + path)."""

import numpy as np
import pytest

from repro.core import pkmc
from repro.datasets.synth import (
    build_undirected_replica,
    clique_edges,
    path_edges,
    sample_zipf,
    zipf_weights,
)


class TestPieces:
    def test_clique_edges_complete(self):
        edges = clique_edges(np.array([3, 5, 9]))
        assert sorted(map(tuple, edges.tolist())) == [(3, 5), (3, 9), (5, 9)]

    def test_clique_edges_count(self):
        edges = clique_edges(np.arange(10))
        assert edges.shape == (45, 2)

    def test_path_edges_consecutive(self):
        edges = path_edges(np.array([2, 4, 6, 8]))
        assert edges.tolist() == [[2, 4], [4, 6], [6, 8]]

    def test_single_vertex_pieces(self):
        assert clique_edges(np.array([1])).shape == (0, 2)
        assert path_edges(np.array([1])).shape == (0, 2)


class TestReplicaComposition:
    def test_vertex_budget(self):
        graph = build_undirected_replica(
            1000, 4000, exponent=2.2, max_weight=50.0,
            clique_size=20, path_length=30, seed=0,
        )
        assert graph.num_vertices == 1000 + 20 + 30

    def test_clique_sets_kstar(self):
        graph = build_undirected_replica(
            1500, 5000, exponent=2.2, max_weight=40.0,
            clique_size=30, path_length=0, seed=1,
        )
        result = pkmc(graph)
        assert result.k_star == 29  # the planted K30
        clique_ids = set(range(1500, 1530))
        assert clique_ids <= set(result.vertices.tolist())

    def test_path_slows_full_convergence_only(self):
        from repro.algorithms.undirected import local_uds

        short = build_undirected_replica(
            1500, 5000, exponent=2.2, max_weight=40.0,
            clique_size=30, path_length=0, seed=2,
        )
        long = build_undirected_replica(
            1500, 5000, exponent=2.2, max_weight=40.0,
            clique_size=30, path_length=120, seed=2,
        )
        # Local (full convergence) pays for the path...
        assert local_uds(long).iterations > local_uds(short).iterations + 30
        # ...while PKMC's early stop does not.
        assert abs(pkmc(long).iterations - pkmc(short).iterations) <= 2

    def test_deterministic(self):
        kwargs = dict(
            num_background_vertices=800,
            target_edges=3000,
            exponent=2.2,
            max_weight=50.0,
            clique_size=15,
            path_length=40,
            seed=5,
        )
        assert build_undirected_replica(**kwargs) == build_undirected_replica(**kwargs)


class TestZipfSampler:
    def test_weights_normalised_and_monotone(self):
        weights = zipf_weights(10, exponent=1.2)
        assert weights.shape == (10,)
        assert abs(weights.sum() - 1.0) < 1e-12
        assert np.all(np.diff(weights) < 0)  # rank 0 is the hottest

    def test_zero_exponent_is_uniform(self):
        weights = zipf_weights(8, exponent=0.0)
        assert np.allclose(weights, 1.0 / 8)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(4, exponent=-1.0)
        with pytest.raises(ValueError):
            sample_zipf(4, size=-1)

    def test_sampling_is_seeded_and_deterministic(self):
        a = sample_zipf(12, 500, exponent=1.1, seed=42)
        b = sample_zipf(12, 500, exponent=1.1, seed=42)
        c = sample_zipf(12, 500, exponent=1.1, seed=43)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_samples_are_in_range_and_skewed(self):
        draws = sample_zipf(20, 2000, exponent=1.5, seed=7)
        assert draws.min() >= 0 and draws.max() < 20
        counts = np.bincount(draws, minlength=20)
        # The hot head must dominate: rank 0 alone beats the tail half.
        assert counts[0] > counts[10:].sum()

    def test_generator_seed_shares_a_stream(self):
        rng = np.random.default_rng(3)
        first = sample_zipf(6, 50, seed=rng)
        second = sample_zipf(6, 50, seed=rng)
        assert not np.array_equal(first, second)  # stream advanced
        replay = np.random.default_rng(3)
        assert np.array_equal(first, sample_zipf(6, 50, seed=replay))
