"""Tests for the composable replica builder (background + clique + path)."""

import numpy as np
import pytest

from repro.core import pkmc
from repro.datasets.synth import build_undirected_replica, clique_edges, path_edges


class TestPieces:
    def test_clique_edges_complete(self):
        edges = clique_edges(np.array([3, 5, 9]))
        assert sorted(map(tuple, edges.tolist())) == [(3, 5), (3, 9), (5, 9)]

    def test_clique_edges_count(self):
        edges = clique_edges(np.arange(10))
        assert edges.shape == (45, 2)

    def test_path_edges_consecutive(self):
        edges = path_edges(np.array([2, 4, 6, 8]))
        assert edges.tolist() == [[2, 4], [4, 6], [6, 8]]

    def test_single_vertex_pieces(self):
        assert clique_edges(np.array([1])).shape == (0, 2)
        assert path_edges(np.array([1])).shape == (0, 2)


class TestReplicaComposition:
    def test_vertex_budget(self):
        graph = build_undirected_replica(
            1000, 4000, exponent=2.2, max_weight=50.0,
            clique_size=20, path_length=30, seed=0,
        )
        assert graph.num_vertices == 1000 + 20 + 30

    def test_clique_sets_kstar(self):
        graph = build_undirected_replica(
            1500, 5000, exponent=2.2, max_weight=40.0,
            clique_size=30, path_length=0, seed=1,
        )
        result = pkmc(graph)
        assert result.k_star == 29  # the planted K30
        clique_ids = set(range(1500, 1530))
        assert clique_ids <= set(result.vertices.tolist())

    def test_path_slows_full_convergence_only(self):
        from repro.algorithms.undirected import local_uds

        short = build_undirected_replica(
            1500, 5000, exponent=2.2, max_weight=40.0,
            clique_size=30, path_length=0, seed=2,
        )
        long = build_undirected_replica(
            1500, 5000, exponent=2.2, max_weight=40.0,
            clique_size=30, path_length=120, seed=2,
        )
        # Local (full convergence) pays for the path...
        assert local_uds(long).iterations > local_uds(short).iterations + 30
        # ...while PKMC's early stop does not.
        assert abs(pkmc(long).iterations - pkmc(short).iterations) <= 2

    def test_deterministic(self):
        kwargs = dict(
            num_background_vertices=800,
            target_edges=3000,
            exponent=2.2,
            max_weight=50.0,
            clique_size=15,
            path_length=40,
            seed=5,
        )
        assert build_undirected_replica(**kwargs) == build_undirected_replica(**kwargs)
