"""Tests for the synthetic dataset registry."""

import numpy as np
import pytest

from repro.datasets import (
    DIRECTED_DATASETS,
    UNDIRECTED_DATASETS,
    dataset_names,
    get_spec,
    load_directed,
    load_undirected,
)
from repro.errors import DatasetError
from repro.graph.stats import powerlaw_exponent_estimate


class TestRegistryStructure:
    def test_twelve_datasets(self):
        assert len(UNDIRECTED_DATASETS) == 6
        assert len(DIRECTED_DATASETS) == 6

    def test_paper_table_order(self):
        assert dataset_names("undirected") == ["PT", "EW", "EU", "IT", "SK", "UN"]
        assert dataset_names("directed") == ["AM", "AR", "BA", "DL", "WE", "TW"]

    def test_get_spec(self):
        spec = get_spec("SK")
        assert spec.full_name == "sk-2005"
        assert spec.paper_edges == 1_949_412_601

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            get_spec("XX")
        with pytest.raises(DatasetError):
            load_undirected("XX")
        with pytest.raises(DatasetError):
            load_directed("XX")

    def test_scale_factors_large(self):
        for spec in list(UNDIRECTED_DATASETS.values()) + list(
            DIRECTED_DATASETS.values()
        ):
            assert spec.scale_factor > 100

    def test_edge_counts_follow_paper_order(self):
        # Replica sizes must preserve the paper's size ordering.
        for table in (UNDIRECTED_DATASETS, DIRECTED_DATASETS):
            replica = [spec.target_edges for spec in table.values()]
            paper = [spec.paper_edges for spec in table.values()]
            assert sorted(range(6), key=lambda i: replica[i]) == sorted(
                range(6), key=lambda i: paper[i]
            )


class TestGeneratedGraphs:
    def test_caching_returns_same_object(self):
        assert load_undirected("PT") is load_undirected("PT")
        assert load_directed("AM") is load_directed("AM")

    def test_sizes_near_targets(self):
        for abbr in dataset_names("undirected"):
            spec = get_spec(abbr)
            graph = load_undirected(abbr)
            assert graph.num_edges == pytest.approx(spec.target_edges, rel=0.15)

    def test_directed_sizes_near_targets(self):
        for abbr in dataset_names("directed"):
            spec = get_spec(abbr)
            graph = load_directed(abbr)
            assert graph.num_edges == pytest.approx(spec.target_edges, rel=0.15)

    def test_undirected_replicas_heavy_tailed(self):
        graph = load_undirected("UN")
        alpha = powerlaw_exponent_estimate(graph.degrees(), d_min=3)
        assert 1.3 < alpha < 4.0

    def test_planted_clique_sets_kstar(self):
        from repro.core import pkmc

        for abbr in ("PT", "UN"):
            spec = get_spec(abbr)
            result = pkmc(load_undirected(abbr))
            assert result.k_star == spec.clique_size - 1
            assert result.num_vertices >= spec.clique_size

    def test_am_is_hub_dominated(self):
        # Table 7: on AM the d_max star is already the answer.
        from repro.core import pwc

        graph = load_directed("AM")
        result = pwc(graph)
        assert result.w_star == graph.max_degree()
        assert result.extras["size_first"] == result.extras["size_wstar"]
