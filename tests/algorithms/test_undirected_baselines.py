"""Tests for the undirected DSD baselines (Charikar, Local, PKC, PBU, PFW,
Greedy++) against each other and the exact solvers."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.undirected import (
    brute_force_uds,
    charikar_peel,
    exact_uds_goldberg,
    greedypp_uds,
    local_core_decomposition,
    local_uds,
    pbu_uds,
    pfw_uds,
    pkc_core_decomposition,
    pkc_uds,
)
from repro.core import pkmc
from repro.errors import EmptyGraphError
from repro.graph import UndirectedGraph, gnm_random_undirected
from repro.runtime import SimRuntime


def _nx_core_numbers(graph):
    nx_graph = nx.Graph(list(map(tuple, graph.edges().tolist())))
    nx_graph.add_nodes_from(range(graph.num_vertices))
    return nx.core_number(nx_graph)


class TestCharikar:
    def test_two_approximation(self, small_random_undirected):
        for seed in range(10):
            g = small_random_undirected(seed)
            if g.num_edges == 0:
                continue
            approx = charikar_peel(g)
            exact = brute_force_uds(g)
            assert approx.density * 2 + 1e-9 >= exact.density

    def test_finds_clique_exactly(self, triangle_graph):
        result = charikar_peel(triangle_graph)
        assert result.vertices.tolist() == [0, 1, 2]
        assert result.density == 1.0

    def test_empty_rejected(self):
        with pytest.raises(EmptyGraphError):
            charikar_peel(UndirectedGraph.empty(2))

    def test_density_matches_reported_set(self, small_random_undirected):
        from repro.algorithms.undirected.common import induced_density

        for seed in range(6):
            g = small_random_undirected(seed)
            if g.num_edges == 0:
                continue
            result = charikar_peel(g)
            assert induced_density(g, result.vertices) == pytest.approx(
                result.density
            )


class TestLocal:
    def test_core_numbers_match_networkx(self, small_random_undirected):
        for seed in range(8):
            g = small_random_undirected(seed, n=20, m=50)
            core_numbers, _ = local_core_decomposition(g)
            expected = _nx_core_numbers(g)
            assert all(
                core_numbers[v] == expected[v] for v in range(g.num_vertices)
            )

    def test_kstar_core_matches_pkmc(self, small_random_undirected):
        for seed in range(8):
            g = small_random_undirected(seed, n=20, m=50)
            if g.num_edges == 0:
                continue
            a = local_uds(g)
            b = pkmc(g)
            assert a.k_star == b.k_star
            assert a.vertices.tolist() == b.vertices.tolist()

    def test_iterations_at_least_pkmc(self, fig2_graph):
        assert local_uds(fig2_graph).iterations >= pkmc(fig2_graph).iterations

    def test_fig2_needs_four_iterations(self, fig2_graph):
        assert local_uds(fig2_graph).iterations == 4


class TestPKC:
    def test_core_numbers_match_networkx(self, small_random_undirected):
        for seed in range(8):
            g = small_random_undirected(seed, n=20, m=50)
            core_numbers, _, _, _ = pkc_core_decomposition(g)
            expected = _nx_core_numbers(g)
            assert all(
                core_numbers[v] == expected[v] for v in range(g.num_vertices)
            )

    def test_kstar_core_matches_pkmc(self, small_random_undirected):
        for seed in range(8):
            g = small_random_undirected(seed, n=20, m=50)
            if g.num_edges == 0:
                continue
            a = pkc_uds(g)
            b = pkmc(g)
            assert a.k_star == b.k_star
            assert sorted(a.vertices.tolist()) == b.vertices.tolist()

    def test_rounds_exceed_kstar(self, small_random_undirected):
        # Level-synchronous peeling needs at least one round per level.
        g = small_random_undirected(3, n=30, m=90)
        result = pkc_uds(g)
        assert result.iterations >= result.k_star


class TestPBU:
    def test_approximation_bound(self, small_random_undirected):
        # 2(1 + eps) guarantee with eps = 0.5 -> factor 3.
        for seed in range(10):
            g = small_random_undirected(seed)
            if g.num_edges == 0:
                continue
            approx = pbu_uds(g, epsilon=0.5)
            exact = brute_force_uds(g)
            assert approx.density * 3 + 1e-9 >= exact.density

    def test_logarithmic_passes(self):
        g = gnm_random_undirected(2000, 8000, seed=0)
        result = pbu_uds(g, epsilon=0.5)
        assert result.iterations <= 40

    def test_invalid_epsilon(self, triangle_graph):
        with pytest.raises(ValueError):
            pbu_uds(triangle_graph, epsilon=0.0)

    def test_smaller_epsilon_at_least_as_good(self, small_random_undirected):
        worse_total, better_total = 0.0, 0.0
        for seed in range(8):
            g = small_random_undirected(seed)
            if g.num_edges == 0:
                continue
            worse_total += pbu_uds(g, epsilon=2.0).density
            better_total += pbu_uds(g, epsilon=0.1).density
        assert better_total + 1e-9 >= worse_total


class TestPFW:
    def test_near_optimal_on_small_graphs(self, small_random_undirected):
        for seed in range(6):
            g = small_random_undirected(seed)
            if g.num_edges == 0:
                continue
            approx = pfw_uds(g, num_rounds=400)
            exact = brute_force_uds(g)
            assert approx.density >= exact.density / 1.2

    def test_more_rounds_no_worse(self, small_random_undirected):
        g = small_random_undirected(1, n=14, m=36)
        short = pfw_uds(g, num_rounds=4)
        long = pfw_uds(g, num_rounds=256)
        assert long.density + 1e-9 >= short.density

    def test_invalid_epsilon(self, triangle_graph):
        with pytest.raises(ValueError):
            pfw_uds(triangle_graph, epsilon=-1.0)

    def test_round_count_reported(self, triangle_graph):
        assert pfw_uds(triangle_graph, num_rounds=17).iterations == 17


class TestGreedyPP:
    def test_at_least_charikar(self, small_random_undirected):
        for seed in range(8):
            g = small_random_undirected(seed)
            if g.num_edges == 0:
                continue
            assert (
                greedypp_uds(g, num_rounds=6).density + 1e-9
                >= charikar_peel(g).density
            )

    def test_single_round_equals_charikar_quality(self, small_random_undirected):
        g = small_random_undirected(2)
        assert greedypp_uds(g, num_rounds=1).density == pytest.approx(
            charikar_peel(g).density
        )

    def test_invalid_rounds(self, triangle_graph):
        with pytest.raises(ValueError):
            greedypp_uds(triangle_graph, num_rounds=0)

    def test_converges_toward_optimum(self):
        # Boob et al.: iterating approaches the true densest subgraph.
        g = gnm_random_undirected(14, 34, seed=5)
        exact = brute_force_uds(g)
        result = greedypp_uds(g, num_rounds=30)
        assert result.density >= exact.density / 1.1


class TestExactSolvers:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_goldberg_matches_brute_force(self, seed):
        g = gnm_random_undirected(10, 22, seed=seed)
        if g.num_edges == 0:
            return
        assert exact_uds_goldberg(g).density == pytest.approx(
            brute_force_uds(g).density
        )

    def test_goldberg_on_clique_plus_tail(self, fig2_graph):
        result = exact_uds_goldberg(fig2_graph)
        assert result.density == pytest.approx(1.5)
        assert result.vertices.tolist() == [0, 1, 2, 3]

    def test_brute_force_size_cap(self):
        g = gnm_random_undirected(20, 40, seed=0)
        with pytest.raises(ValueError):
            brute_force_uds(g)

    def test_empty_rejected(self):
        with pytest.raises(EmptyGraphError):
            exact_uds_goldberg(UndirectedGraph.empty(3))


class TestSimulatedCostShape:
    def test_pbu_slower_than_pkmc_at_32_threads(self):
        # Paper Exp-1: PKMC at least 5x faster than PBU.
        from repro.datasets import load_undirected

        g = load_undirected("PT")
        pkmc_time = pkmc(g, runtime=SimRuntime(32)).simulated_seconds
        pbu_time = pbu_uds(g, runtime=SimRuntime(32)).simulated_seconds
        assert pbu_time > 5 * pkmc_time

    def test_pkc_flattens_at_high_threads(self):
        from repro.datasets import load_undirected

        g = load_undirected("PT")
        t32 = pkc_uds(g, runtime=SimRuntime(32)).simulated_seconds
        t64 = pkc_uds(g, runtime=SimRuntime(64)).simulated_seconds
        assert t64 > 0.8 * t32  # no meaningful speedup from 32 to 64
