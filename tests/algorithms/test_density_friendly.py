"""Tests for the density-friendly (locally-dense) decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.undirected import (
    brute_force_uds,
    density_friendly_decomposition,
    density_profile,
)
from repro.errors import EmptyGraphError
from repro.graph import UndirectedGraph, gnm_random_undirected


class TestDecomposition:
    def test_fig2_chain(self, fig2_graph):
        chain = density_friendly_decomposition(fig2_graph)
        # First block: the K4 at marginal density 1.5; then the tail at 1.0.
        assert chain[0][0].tolist() == [0, 1, 2, 3]
        assert chain[0][1] == pytest.approx(1.5)
        assert chain[-1][0].size == fig2_graph.num_vertices

    def test_blocks_nested(self, fig2_graph):
        chain = density_friendly_decomposition(fig2_graph)
        for (smaller, _), (larger, _) in zip(chain, chain[1:]):
            assert set(smaller.tolist()) < set(larger.tolist())

    def test_empty_rejected(self):
        with pytest.raises(EmptyGraphError):
            density_friendly_decomposition(UndirectedGraph.empty(3))

    def test_size_cap(self):
        with pytest.raises(ValueError):
            density_friendly_decomposition(
                gnm_random_undirected(500, 900, seed=0), max_vertices=100
            )

    def test_isolated_vertices_end_up_in_last_block(self):
        g = UndirectedGraph.from_edges(5, [(0, 1), (1, 2), (0, 2)])
        chain = density_friendly_decomposition(g)
        assert chain[-1][0].size == 5
        assert chain[-1][1] == pytest.approx(0.0)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=12, deadline=None)
    def test_first_block_is_densest_subgraph(self, seed):
        g = gnm_random_undirected(11, 24, seed=seed)
        if g.num_edges == 0:
            return
        chain = density_friendly_decomposition(g)
        assert chain[0][1] == pytest.approx(brute_force_uds(g).density)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=12, deadline=None)
    def test_marginal_densities_non_increasing(self, seed):
        g = gnm_random_undirected(12, 28, seed=seed)
        if g.num_edges == 0:
            return
        densities = [d for _, d in density_friendly_decomposition(g)]
        for earlier, later in zip(densities, densities[1:]):
            assert earlier >= later - 1e-9


class TestProfile:
    def test_profile_levels(self, fig2_graph):
        profile = density_profile(fig2_graph)
        assert np.all(profile[:4] == pytest.approx(1.5))
        assert np.all(profile[4:] == pytest.approx(1.0))

    def test_profile_upper_bounds_everything(self):
        g = gnm_random_undirected(12, 30, seed=1)
        if g.num_edges == 0:
            return
        profile = density_profile(g)
        optimum = brute_force_uds(g).density
        assert profile.max() == pytest.approx(optimum)
