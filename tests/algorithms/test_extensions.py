"""Tests for the extension algorithms: binary-search strawman, CoreExact,
and the k-truss machinery (the paper's future-work direction)."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.undirected import (
    brute_force_uds,
    coreexact_uds,
    edge_support,
    exact_uds_goldberg,
    kstar_binary_search_uds,
    max_truss_uds,
    truss_decomposition,
)
from repro.core import pkmc
from repro.errors import EmptyGraphError
from repro.graph import (
    UndirectedGraph,
    gnm_random_undirected,
    planted_dense_subgraph,
)


class TestBinarySearchStrawman:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_matches_pkmc(self, seed):
        g = gnm_random_undirected(16, 40, seed=seed)
        if g.num_edges == 0:
            return
        strawman = kstar_binary_search_uds(g)
        reference = pkmc(g)
        assert strawman.k_star == reference.k_star
        assert strawman.vertices.tolist() == reference.vertices.tolist()

    def test_probe_count_logarithmic(self):
        graph, _ = planted_dense_subgraph(
            1500, 6000, core_size=30, core_probability=1.0, seed=0
        )
        result = kstar_binary_search_uds(graph)
        assert result.iterations <= int(np.log2(graph.max_degree())) + 2

    def test_empty_rejected(self):
        with pytest.raises(EmptyGraphError):
            kstar_binary_search_uds(UndirectedGraph.empty(3))

    def test_simulated_cost_exceeds_pkmc(self):
        # The strawman pays O((m + n) log n): the reason the paper
        # discards it in Section IV-B.
        from repro.datasets import load_undirected
        from repro.runtime import SimRuntime

        g = load_undirected("PT")
        strawman = kstar_binary_search_uds(g, runtime=SimRuntime(32))
        reference = pkmc(g, runtime=SimRuntime(32))
        assert strawman.simulated_seconds > reference.simulated_seconds


class TestCoreExact:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_matches_goldberg(self, seed):
        g = gnm_random_undirected(12, 28, seed=seed)
        if g.num_edges == 0:
            return
        assert coreexact_uds(g).density == pytest.approx(
            exact_uds_goldberg(g).density
        )

    def test_matches_brute_force(self):
        for seed in range(6):
            g = gnm_random_undirected(11, 25, seed=seed)
            if g.num_edges == 0:
                continue
            assert coreexact_uds(g).density == pytest.approx(
                brute_force_uds(g).density
            )

    def test_pruning_is_aggressive_on_planted_core(self):
        graph, _ = planted_dense_subgraph(
            3000, 12000, core_size=30, core_probability=1.0, seed=1
        )
        result = coreexact_uds(graph)
        # The flow network only ever sees a tiny core, not 3000 vertices.
        assert result.extras["pruned_vertices"] < 100
        assert result.density >= result.k_star / 2

    def test_empty_rejected(self):
        with pytest.raises(EmptyGraphError):
            coreexact_uds(UndirectedGraph.empty(1))


class TestTrussDecomposition:
    def test_triangle_is_3_truss(self, triangle_graph):
        truss, k_max = truss_decomposition(triangle_graph)
        assert k_max == 3
        assert truss.tolist() == [3, 3, 3]

    def test_tree_is_2_truss(self):
        g = UndirectedGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        truss, k_max = truss_decomposition(g)
        assert k_max == 2
        assert set(truss.tolist()) == {2}

    def test_clique_truss_number(self):
        k = 6
        g = UndirectedGraph.from_edges(
            k, [(i, j) for i in range(k) for j in range(i + 1, k)]
        )
        _, k_max = truss_decomposition(g)
        assert k_max == k  # a k-clique is a k-truss

    def test_edge_support_counts_triangles(self, fig2_graph):
        support = edge_support(fig2_graph)
        lookup = {
            tuple(e): int(s)
            for e, s in zip(fig2_graph.edges().tolist(), support)
        }
        assert lookup[(0, 1)] == 2  # in triangles with 2 and 3
        assert lookup[(3, 4)] == 0  # tail edge

    def test_empty_graph(self):
        truss, k_max = truss_decomposition(UndirectedGraph.empty(3))
        assert truss.size == 0
        assert k_max == 0

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=12, deadline=None)
    def test_truss_numbers_match_networkx(self, seed):
        g = gnm_random_undirected(12, 34, seed=seed)
        if g.num_edges == 0:
            return
        truss, k_max = truss_decomposition(g)
        nx_graph = nx.Graph(list(map(tuple, g.edges().tolist())))
        # networkx: k-truss where each edge is in >= k - 2 triangles; an
        # edge's truss number is the largest k whose k_truss contains it.
        for k in range(2, k_max + 1):
            members = {
                tuple(sorted(e)) for e in nx.k_truss(nx_graph, k).edges()
            }
            ours = {
                tuple(e)
                for e, t in zip(g.edges().tolist(), truss)
                if t >= k
            }
            assert ours == members, k

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_truss_subgraph_support_invariant(self, seed):
        # Within the k_max-truss every edge closes >= k_max - 2 triangles.
        g = gnm_random_undirected(14, 40, seed=seed)
        if g.num_edges == 0:
            return
        truss, k_max = truss_decomposition(g)
        members = g.edges()[truss == k_max]
        sub = UndirectedGraph.from_edges(g.num_vertices, members)
        inner_support = edge_support(sub)
        assert np.all(inner_support >= k_max - 2)


class TestMaxTrussUDS:
    def test_density_bound(self):
        for seed in range(6):
            g = gnm_random_undirected(15, 45, seed=seed)
            if g.num_edges == 0:
                continue
            result = max_truss_uds(g)
            assert result.density >= (result.k_star - 1) / 2 - 1e-9

    def test_planted_clique_is_max_truss(self):
        graph, core = planted_dense_subgraph(
            1000, 4000, core_size=20, core_probability=1.0, seed=2
        )
        result = max_truss_uds(graph)
        assert set(core.tolist()) <= set(result.vertices.tolist())

    def test_empty_rejected(self):
        with pytest.raises(EmptyGraphError):
            max_truss_uds(UndirectedGraph.empty(2))


class TestTriangleDensest:
    def test_counts_on_fig2(self, fig2_graph):
        from repro.algorithms.undirected import total_triangles, triangle_counts

        counts = triangle_counts(fig2_graph)
        # The K4 gives each of its 4 vertices 3 triangles; the tail none.
        assert counts.tolist() == [3, 3, 3, 3, 0, 0, 0, 0]
        assert total_triangles(fig2_graph) == 4

    def test_counts_match_networkx(self):
        from repro.algorithms.undirected import triangle_counts

        for seed in range(6):
            g = gnm_random_undirected(15, 45, seed=seed)
            counts = triangle_counts(g)
            nx_graph = nx.Graph(list(map(tuple, g.edges().tolist())))
            nx_graph.add_nodes_from(range(g.num_vertices))
            expected = nx.triangles(nx_graph)
            assert all(counts[v] == expected[v] for v in range(g.num_vertices))

    def test_peel_on_planted_clique(self):
        from repro.algorithms.undirected import triangle_densest_peel

        graph, core = planted_dense_subgraph(
            500, 1500, core_size=15, core_probability=1.0, seed=3
        )
        result = triangle_densest_peel(graph)
        assert set(core.tolist()) <= set(result.vertices.tolist())

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_one_third_approximation(self, seed):
        from repro.algorithms.undirected import (
            brute_force_triangle_densest,
            triangle_densest_peel,
        )

        g = gnm_random_undirected(11, 32, seed=seed)
        if g.num_edges == 0:
            return
        exact = brute_force_triangle_densest(g)
        if exact.density == 0:
            return
        approx = triangle_densest_peel(g)
        assert approx.density * 3 + 1e-9 >= exact.density
        assert approx.density <= exact.density + 1e-9

    def test_empty_rejected(self):
        from repro.algorithms.undirected import triangle_densest_peel
        from repro.graph import UndirectedGraph

        with pytest.raises(EmptyGraphError):
            triangle_densest_peel(UndirectedGraph.empty(3))

    def test_triangle_core_vs_edge_core(self):
        # A near-clique plus a triangle-free dense bipartite block: edge
        # density may pick the bipartite part, triangle density cannot.
        from repro.algorithms.undirected import triangle_densest_peel
        from repro.graph import UndirectedGraph

        edges = [(i, j) for i in range(6) for j in range(i + 1, 6)]  # K6
        # Dense bipartite block on 7..16 (no triangles).
        left = range(6, 11)
        right = range(11, 16)
        edges += [(u, v) for u in left for v in right]
        g = UndirectedGraph.from_edges(16, edges)
        result = triangle_densest_peel(g)
        assert set(result.vertices.tolist()) == set(range(6))
