"""Tests for the directed DSD baselines (PBS, PFKS, PBD, PFW, PXY)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.directed import (
    brute_force_dds,
    charikar_directed_peel_for_ratio,
    exact_dds_flow,
    pbd_dds,
    pbs_dds,
    pfks_dds,
    pfw_directed_dds,
    pxy_dds,
    ratio_grid,
    st_density,
)
from repro.core import pwc
from repro.errors import EmptyGraphError, SimTimeLimitExceeded
from repro.graph import DirectedGraph, gnm_random_directed
from repro.runtime import SimRuntime


class TestCommonHelpers:
    def test_st_density(self, fig3_graph):
        assert st_density(
            fig3_graph, np.array([0, 1]), np.array([4, 5, 6])
        ) == pytest.approx(6 / np.sqrt(6))

    def test_st_density_empty(self, fig3_graph):
        assert st_density(fig3_graph, np.array([]), np.array([4])) == 0.0

    def test_ratio_grid_covers_range(self):
        grid = ratio_grid(100, 2.0)
        assert min(grid) <= 1 / 100 * 2
        assert max(grid) == 100
        assert 1.0 in grid

    def test_ratio_peel_quality(self, small_random_directed):
        # Peeling with the optimum's own ratio must be a 2-approximation.
        for seed in range(8):
            d = small_random_directed(seed)
            if d.num_edges == 0:
                continue
            exact = brute_force_dds(d)
            ratio = exact.s_size / exact.t_size
            _, _, density = charikar_directed_peel_for_ratio(d, ratio)
            assert density * 2 + 1e-9 >= exact.density


class TestPBS:
    def test_two_approximation(self, small_random_directed):
        for seed in range(6):
            d = small_random_directed(seed)
            if d.num_edges == 0:
                continue
            approx = pbs_dds(d)
            exact = brute_force_dds(d)
            assert approx.density * 2 + 1e-9 >= exact.density

    def test_often_exact_on_small_graphs(self, small_random_directed):
        hits = 0
        total = 0
        for seed in range(8):
            d = small_random_directed(seed)
            if d.num_edges == 0:
                continue
            total += 1
            if pbs_dds(d).density == pytest.approx(brute_force_dds(d).density):
                hits += 1
        assert hits >= total // 2

    def test_quadratic_cost_dnfs_under_budget(self):
        d = gnm_random_directed(3000, 9000, seed=0)
        with pytest.raises(SimTimeLimitExceeded):
            pbs_dds(d, runtime=SimRuntime(32, time_limit=0.5))

    def test_ratio_cap_limits_work(self, small_random_directed):
        d = small_random_directed(0)
        result = pbs_dds(d, max_ratio_denominator=3)
        assert result.iterations <= 7  # distinct a/b with a, b <= 3


class TestPFKS:
    def test_reasonable_quality(self, small_random_directed):
        for seed in range(6):
            d = small_random_directed(seed)
            if d.num_edges == 0:
                continue
            approx = pfks_dds(d)
            exact = brute_force_dds(d)
            # The fixed KS variant has ratio > 2 in theory; stay lenient.
            assert approx.density * 3 + 1e-9 >= exact.density

    def test_linear_task_count_dnfs_under_budget(self):
        d = gnm_random_directed(20000, 40000, seed=0)
        with pytest.raises(SimTimeLimitExceeded):
            pfks_dds(d, runtime=SimRuntime(32, time_limit=0.5))

    def test_max_rounds_cap(self, small_random_directed):
        d = small_random_directed(1)
        result = pfks_dds(d, max_rounds=4)
        assert result.iterations <= 4


class TestPBD:
    def test_eight_approximation(self, small_random_directed):
        # 2 * delta * (1 + eps) = 8 with the paper's defaults.
        for seed in range(10):
            d = small_random_directed(seed)
            if d.num_edges == 0:
                continue
            approx = pbd_dds(d)
            exact = brute_force_dds(d)
            assert approx.density * 8 + 1e-9 >= exact.density

    def test_parameter_validation(self, fig3_graph):
        with pytest.raises(ValueError):
            pbd_dds(fig3_graph, delta=1.0)
        with pytest.raises(ValueError):
            pbd_dds(fig3_graph, epsilon=0.0)

    def test_per_thread_memory_booked(self, fig3_graph):
        rt = SimRuntime(8)
        pbd_dds(fig3_graph, runtime=rt)
        expected = 8 * rt.cost_model.graph_bytes(
            fig3_graph.num_vertices, fig3_graph.num_edges
        )
        assert rt.metrics.peak_memory_bytes == expected

    def test_sweet_spot_before_64_threads(self):
        from repro.datasets import load_directed

        d = load_directed("AR")
        times = {
            p: pbd_dds(d, runtime=SimRuntime(p)).simulated_seconds
            for p in (8, 16, 32, 64)
        }
        assert times[64] > min(times.values())  # degrades past the optimum


class TestPFWDirected:
    def test_positive_density_found(self, small_random_directed):
        for seed in range(5):
            d = small_random_directed(seed)
            if d.num_edges == 0:
                continue
            result = pfw_directed_dds(d, num_rounds=64)
            exact = brute_force_dds(d)
            assert 0 < result.density <= exact.density + 1e-9
            assert result.density * 3 + 1e-9 >= exact.density

    def test_invalid_epsilon(self, fig3_graph):
        with pytest.raises(ValueError):
            pfw_directed_dds(fig3_graph, epsilon=0.0)

    def test_charges_before_running(self):
        d = gnm_random_directed(2000, 20000, seed=1)
        with pytest.raises(SimTimeLimitExceeded):
            pfw_directed_dds(d, runtime=SimRuntime(32, time_limit=1e-4))


class TestPXY:
    def test_matches_pwc_product(self, small_random_directed):
        for seed in range(10):
            d = small_random_directed(seed)
            if d.num_edges == 0:
                continue
            a = pxy_dds(d)
            b = pwc(d)
            assert a.x * a.y == b.x * b.y == b.w_star

    def test_two_approximation(self, small_random_directed):
        for seed in range(8):
            d = small_random_directed(seed)
            if d.num_edges == 0:
                continue
            approx = pxy_dds(d)
            exact = brute_force_dds(d)
            assert approx.density * 2 + 1e-9 >= exact.density

    def test_task_count_bounded_by_2_sqrt_m(self, small_random_directed):
        d = small_random_directed(2)
        result = pxy_dds(d)
        assert result.iterations <= 2 * int(np.ceil(np.sqrt(d.num_edges))) + 2

    def test_per_thread_memory_booked(self, fig3_graph):
        rt = SimRuntime(4)
        pxy_dds(fig3_graph, runtime=rt)
        assert rt.metrics.peak_memory_bytes == 4 * rt.cost_model.graph_bytes(
            fig3_graph.num_vertices, fig3_graph.num_edges
        )

    def test_empty_rejected(self):
        with pytest.raises(EmptyGraphError):
            pxy_dds(DirectedGraph.empty(3))


class TestExactSolvers:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=12, deadline=None)
    def test_flow_matches_brute_force(self, seed):
        d = gnm_random_directed(7, 18, seed=seed)
        if d.num_edges == 0:
            return
        assert exact_dds_flow(d).density == pytest.approx(
            brute_force_dds(d).density, rel=1e-6
        )

    def test_brute_force_on_fig3(self, fig3_graph):
        # Optimum: S = {u1, u2, u3}, T = {v1..v4}: 9 edges / sqrt(3 * 4).
        result = brute_force_dds(fig3_graph)
        assert result.density == pytest.approx(9 / np.sqrt(12))
        assert result.s.tolist() == [0, 1, 2]
        assert result.t.tolist() == [4, 5, 6, 7]

    def test_brute_force_size_cap(self):
        d = gnm_random_directed(15, 40, seed=0)
        with pytest.raises(ValueError):
            brute_force_dds(d)

    def test_flow_size_cap(self):
        d = gnm_random_directed(80, 200, seed=0)
        with pytest.raises(ValueError):
            exact_dds_flow(d)

    def test_empty_rejected(self):
        with pytest.raises(EmptyGraphError):
            brute_force_dds(DirectedGraph.empty(2))


class TestExactCore:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_matches_brute_force(self, seed):
        from repro.algorithms.directed import exact_dds_core

        d = gnm_random_directed(8, 22, seed=seed)
        if d.num_edges == 0:
            return
        assert exact_dds_core(d).density == pytest.approx(
            brute_force_dds(d).density, rel=1e-6
        )

    def test_seeded_by_pwc(self, fig3_graph):
        from repro.algorithms.directed import exact_dds_core

        result = exact_dds_core(fig3_graph)
        assert result.extras["seed_density"] <= result.density + 1e-9
        assert result.density == pytest.approx(9 / np.sqrt(12))

    def test_pruning_shrinks_hub_graphs(self):
        from repro.algorithms.directed import exact_dds_core
        from repro.graph import planted_st_subgraph

        graph, _, _ = planted_st_subgraph(
            60, 180, s_size=6, t_size=8, block_probability=1.0,
            max_weight=4.0, seed=5,
        )
        result = exact_dds_core(graph)
        # The planted block dominates; the cores the flow sees are small.
        assert result.extras["max_pruned_edges"] < graph.num_edges

    def test_size_cap(self):
        from repro.algorithms.directed import exact_dds_core

        with pytest.raises(ValueError):
            exact_dds_core(gnm_random_directed(100, 300, seed=0))

    def test_empty_rejected(self):
        from repro.algorithms.directed import exact_dds_core

        with pytest.raises(EmptyGraphError):
            exact_dds_core(DirectedGraph.empty(3))
