"""Sharded BSP supersteps are bit-identical to the monolithic solvers."""

import numpy as np
import pytest

from repro.distributed import (
    ShardedPartition,
    distributed_pkmc,
    distributed_pwc,
    sharded_pkmc,
    sharded_pwc,
)
from repro.distributed.cluster import ClusterConfig
from repro.errors import EmptyGraphError
from repro.graph.directed import DirectedGraph
from repro.graph.generators import chung_lu_directed, chung_lu_undirected
from repro.graph.undirected import UndirectedGraph
from repro.store.shard import load_sharded, save_sharded


def _sharded(graph, tmp_path, shards, **kwargs):
    save_sharded(graph, tmp_path, shards=shards)
    return load_sharded(tmp_path, **kwargs)


class TestShardedPkmc:
    @pytest.mark.parametrize("shards", [1, 3, 8])
    def test_bit_identical_to_monolithic(self, tmp_path, shards):
        graph = chung_lu_undirected(600, 3_000, seed=41)
        sharded = _sharded(graph, tmp_path, shards)
        mono = distributed_pkmc(graph)
        shard = distributed_pkmc(sharded)
        assert shard.density == mono.density
        assert shard.k_star == mono.k_star
        assert shard.iterations == mono.iterations
        assert np.array_equal(shard.vertices, mono.vertices)
        assert shard.extras["history"] == mono.extras["history"]
        assert shard.extras["supersteps"] == mono.extras["supersteps"]
        assert shard.extras["early_stop_fired"] == mono.extras["early_stop_fired"]

    def test_no_early_stop_matches_too(self, tmp_path):
        graph = chung_lu_undirected(400, 1_500, seed=42)
        sharded = _sharded(graph, tmp_path, 4)
        mono = distributed_pkmc(graph, early_stop=False)
        shard = distributed_pkmc(sharded, early_stop=False)
        assert np.array_equal(shard.vertices, mono.vertices)
        assert shard.extras["supersteps"] == mono.extras["supersteps"]

    def test_sanitize_path_matches(self, tmp_path):
        graph = chung_lu_undirected(300, 1_200, seed=43)
        sharded = _sharded(graph, tmp_path, 3)
        mono = distributed_pkmc(graph, sanitize=True)
        shard = distributed_pkmc(sharded, sanitize=True)
        assert shard.k_star == mono.k_star
        assert np.array_equal(shard.vertices, mono.vertices)

    def test_runs_under_memory_budget(self, tmp_path):
        graph = chung_lu_undirected(600, 3_000, seed=44)
        unbudgeted = _sharded(graph, tmp_path, 6)
        sizes = [unbudgeted.shard(i).nbytes for i in range(6)]
        budget = sum(sorted(sizes)[-2:]) + 8  # two shards fit
        sharded = _sharded(graph, tmp_path, 6, memory_budget_bytes=budget)
        shard = distributed_pkmc(sharded)
        mono = distributed_pkmc(graph)
        assert np.array_equal(shard.vertices, mono.vertices)
        stats = shard.extras["shard_stats"]
        assert stats["peak_resident_bytes"] <= budget
        assert stats["evictions"] > 0
        assert stats["boundary_messages_bytes"] > 0

    def test_direct_entry_point_and_extras(self, tmp_path):
        graph = chung_lu_undirected(300, 1_200, seed=45)
        sharded = _sharded(graph, tmp_path, 3)
        result = sharded_pkmc(sharded, config=ClusterConfig(num_workers=3))
        for key in ("supersteps", "total_messages", "cross_edge_fraction",
                    "history", "compute_seconds", "exchange_seconds",
                    "overhead_seconds", "shard_stats"):
            assert key in result.extras, key
        assert result.extras["num_workers"] == 3
        assert result.simulated_seconds == pytest.approx(
            result.extras["compute_seconds"]
            + result.extras["exchange_seconds"]
            + result.extras["overhead_seconds"]
        )

    def test_empty_graph_raises(self, tmp_path):
        graph = UndirectedGraph.from_edges(5, [])
        sharded = _sharded(graph, tmp_path, 2)
        with pytest.raises(EmptyGraphError):
            sharded_pkmc(sharded)


class TestShardedPwc:
    @pytest.mark.parametrize("shards", [1, 3, 8])
    def test_bit_identical_to_monolithic(self, tmp_path, shards):
        graph = chung_lu_directed(500, 2_500, seed=51)
        sharded = _sharded(graph, tmp_path, shards)
        mono = distributed_pwc(graph)
        shard = distributed_pwc(sharded)
        assert shard.density == mono.density
        assert shard.w_star == mono.w_star
        assert (shard.x, shard.y) == (mono.x, mono.y)
        assert np.array_equal(shard.s, mono.s)
        assert np.array_equal(shard.t, mono.t)
        assert shard.iterations == mono.iterations
        assert shard.extras["supersteps"] == mono.extras["supersteps"]
        assert shard.extras["size_wstar"] == mono.extras["size_wstar"]

    def test_without_dmax_prune_matches(self, tmp_path):
        graph = chung_lu_directed(300, 1_500, seed=52)
        sharded = _sharded(graph, tmp_path, 4)
        mono = distributed_pwc(graph, start_at_dmax=False)
        shard = distributed_pwc(sharded, start_at_dmax=False)
        assert shard.w_star == mono.w_star
        assert np.array_equal(shard.s, mono.s)
        assert np.array_equal(shard.t, mono.t)
        assert shard.extras["supersteps"] == mono.extras["supersteps"]

    def test_runs_under_memory_budget(self, tmp_path):
        graph = chung_lu_directed(500, 2_500, seed=53)
        unbudgeted = _sharded(graph, tmp_path, 6)
        sizes = [unbudgeted.shard(i).nbytes for i in range(6)]
        budget = sum(sorted(sizes)[-2:]) + 8
        sharded = _sharded(graph, tmp_path, 6, memory_budget_bytes=budget)
        shard = distributed_pwc(sharded)
        mono = distributed_pwc(graph)
        assert shard.w_star == mono.w_star
        assert np.array_equal(shard.s, mono.s)
        stats = shard.extras["shard_stats"]
        assert stats["peak_resident_bytes"] <= budget

    def test_empty_graph_raises(self, tmp_path):
        graph = DirectedGraph.from_edges(4, [])
        sharded = _sharded(graph, tmp_path, 2)
        with pytest.raises(EmptyGraphError):
            sharded_pwc(sharded)


class TestShardedPartition:
    def test_geometry_and_boundary_counts(self, tmp_path):
        graph = chung_lu_undirected(400, 1_600, seed=61)
        sharded = _sharded(graph, tmp_path, 4)
        partition = ShardedPartition(sharded)
        assert partition.num_workers == 4
        owners = partition.owners(np.arange(400))
        assert owners.shape == (400,)
        assert np.all(np.diff(owners) >= 0)  # contiguous ranges
        counts = partition.cross_neighbor_counts()
        # Each vertex's cross-neighbor count is bounded by its degree...
        assert np.all(counts <= graph.degrees().astype(np.int64))
        # ...and sums to the boundary-table total.
        total = sum(
            sharded.shard(i).boundary_src.size for i in range(4)
        )
        assert counts.sum() == total
        assert 0.0 <= partition.cross_edge_fraction() <= 1.0
