"""Tests for the simulated BSP cluster and the distributed PKMC port."""

import numpy as np
import pytest

from repro.core import pkmc
from repro.distributed import BSPCluster, ClusterConfig, distributed_pkmc
from repro.errors import EmptyGraphError, SimulationError
from repro.graph import UndirectedGraph, chung_lu_undirected, gnm_random_undirected


class TestClusterConfig:
    def test_defaults(self):
        config = ClusterConfig()
        assert config.num_workers == 8

    def test_zero_workers_rejected(self):
        with pytest.raises(SimulationError):
            ClusterConfig(num_workers=0)


class TestBSPCluster:
    def test_hash_partition_covers_all(self):
        g = gnm_random_undirected(40, 80, seed=0)
        cluster = BSPCluster(g, ClusterConfig(num_workers=4))
        sizes = [p.vertices.size for p in cluster.partitions]
        assert sum(sizes) == g.num_vertices
        assert max(sizes) - min(sizes) <= 1  # hash partition is balanced

    def test_cross_edge_fraction_bounds(self):
        g = gnm_random_undirected(50, 150, seed=1)
        single = BSPCluster(g, ClusterConfig(num_workers=1))
        assert single.cross_edge_fraction() == 0.0
        many = BSPCluster(g, ClusterConfig(num_workers=16))
        assert 0.0 < many.cross_edge_fraction() <= 1.0

    def test_cross_fraction_grows_with_workers(self):
        g = gnm_random_undirected(100, 300, seed=2)
        fractions = [
            BSPCluster(g, ClusterConfig(num_workers=w)).cross_edge_fraction()
            for w in (2, 4, 16)
        ]
        assert fractions == sorted(fractions)

    def test_superstep_advances_clock(self):
        g = gnm_random_undirected(20, 40, seed=3)
        cluster = BSPCluster(g, ClusterConfig(num_workers=4))
        elapsed = cluster.superstep(
            np.ones(g.num_vertices), np.zeros(g.num_vertices)
        )
        assert elapsed > 0
        assert cluster.now == elapsed
        assert cluster.supersteps == 1

    def test_superstep_gated_by_slowest_worker(self):
        g = UndirectedGraph.from_edges(4, [(0, 1), (2, 3)])
        config = ClusterConfig(
            num_workers=2,
            network_latency_seconds=0.0,
            barrier_seconds=0.0,
            aggregator_seconds=0.0,
        )
        cluster = BSPCluster(g, config)
        # All work on one worker's vertices (0 and 2 are worker 0).
        compute = np.array([1e6, 0.0, 1e6, 0.0])
        elapsed = cluster.superstep(compute, np.zeros(4), aggregate=False)
        assert elapsed == pytest.approx(2e6 * config.work_unit_seconds)

    def test_message_bytes_charged(self):
        g = gnm_random_undirected(20, 40, seed=4)
        config = ClusterConfig(num_workers=4)
        quiet = BSPCluster(g, config)
        noisy = BSPCluster(g, config)
        quiet.superstep(np.zeros(g.num_vertices), np.zeros(g.num_vertices))
        noisy.superstep(
            np.zeros(g.num_vertices), np.full(g.num_vertices, 1e5)
        )
        assert noisy.now > quiet.now

    def test_wrong_shape_rejected(self):
        g = gnm_random_undirected(10, 20, seed=5)
        cluster = BSPCluster(g)
        with pytest.raises(SimulationError):
            cluster.superstep(np.ones(3), np.zeros(10))


class TestDistributedPKMC:
    def test_matches_shared_memory_answer(self):
        for seed in range(6):
            g = gnm_random_undirected(40, 120, seed=seed)
            if g.num_edges == 0:
                continue
            shared = pkmc(g)
            for workers in (1, 4, 16):
                dist = distributed_pkmc(g, ClusterConfig(num_workers=workers))
                assert dist.k_star == shared.k_star, (seed, workers)
                assert dist.vertices.tolist() == shared.vertices.tolist()

    def test_early_stop_matches_shared_memory(self):
        from repro.datasets import load_undirected

        g = load_undirected("PT")
        dist = distributed_pkmc(g)
        shared = pkmc(g)
        assert dist.extras["early_stop_fired"]
        assert dist.k_star == shared.k_star

    def test_disabling_early_stop_takes_longer(self):
        g = chung_lu_undirected(2000, 8000, seed=7)
        fast = distributed_pkmc(g)
        slow = distributed_pkmc(g, early_stop=False)
        assert fast.iterations <= slow.iterations
        assert fast.k_star == slow.k_star

    def test_empty_graph_rejected(self):
        with pytest.raises(EmptyGraphError):
            distributed_pkmc(UndirectedGraph.empty(4))

    def test_communication_dominates_small_graphs(self):
        # The paper's caveat realised: for graphs that fit in one machine,
        # BSP latency makes the distributed port slower than shared memory.
        from repro.datasets import load_undirected
        from repro.runtime import SimRuntime

        g = load_undirected("PT")
        dist = distributed_pkmc(g, ClusterConfig(num_workers=32))
        shared = pkmc(g, runtime=SimRuntime(32))
        assert dist.simulated_seconds > shared.simulated_seconds

    def test_messages_shrink_after_convergence_wave(self):
        g = chung_lu_undirected(3000, 12000, seed=8)
        result = distributed_pkmc(g)
        # Silent-unless-changed: total messages well below
        # supersteps * 2m (the naive all-send volume).
        naive = result.extras["supersteps"] * 2 * g.num_edges
        assert result.extras["total_messages"] < naive

    def test_deterministic(self):
        g = gnm_random_undirected(60, 200, seed=9)
        a = distributed_pkmc(g)
        b = distributed_pkmc(g)
        assert a.simulated_seconds == b.simulated_seconds
        assert a.extras["total_messages"] == b.extras["total_messages"]


class TestDistributedPWC:
    def test_matches_shared_memory_answer(self):
        from repro.core import pwc
        from repro.distributed import distributed_pwc
        from repro.graph import gnm_random_directed

        for seed in range(6):
            d = gnm_random_directed(40, 150, seed=seed)
            if d.num_edges == 0:
                continue
            shared = pwc(d)
            for workers in (1, 4, 16):
                dist = distributed_pwc(d, ClusterConfig(num_workers=workers))
                assert dist.w_star == shared.w_star, (seed, workers)
                assert dist.x * dist.y == shared.x * shared.y

    def test_table7_sizes_preserved(self):
        from repro.core import pwc
        from repro.datasets import load_directed
        from repro.distributed import distributed_pwc

        d = load_directed("AM")
        shared = pwc(d)
        dist = distributed_pwc(d)
        assert dist.extras["size_first"] == shared.extras["size_first"]
        assert dist.extras["size_wstar"] == shared.extras["size_wstar"]

    def test_dmax_prune_saves_supersteps(self):
        from repro.datasets import load_directed
        from repro.distributed import distributed_pwc

        d = load_directed("BA")
        fast = distributed_pwc(d, start_at_dmax=True)
        slow = distributed_pwc(d, start_at_dmax=False)
        assert fast.w_star == slow.w_star
        assert fast.extras["supersteps"] < slow.extras["supersteps"]

    def test_empty_rejected(self):
        from repro.distributed import distributed_pwc
        from repro.graph import DirectedGraph

        with pytest.raises(EmptyGraphError):
            distributed_pwc(DirectedGraph.empty(3))

    def test_deterministic(self):
        from repro.distributed import distributed_pwc
        from repro.graph import gnm_random_directed

        d = gnm_random_directed(50, 200, seed=11)
        a = distributed_pwc(d)
        b = distributed_pwc(d)
        assert a.simulated_seconds == b.simulated_seconds
        assert a.extras["total_messages"] == b.extras["total_messages"]
