"""Cross-algorithm integration tests: every solver against every oracle.

These are the library's strongest guarantees: all 2-approximation
algorithms verified against exact flow/brute-force optima, core-based
algorithms against networkx, and the paper's headline invariants
(Lemma 1, Lemma 3, Theorem 1, Theorem 2) exercised end to end on random
inputs via hypothesis.
"""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import densest_subgraph, directed_densest_subgraph
from repro.algorithms.directed import brute_force_dds
from repro.algorithms.undirected import brute_force_uds
from repro.graph import (
    DirectedGraph,
    UndirectedGraph,
    gnm_random_directed,
    gnm_random_undirected,
)

TWO_APPROX_UDS = ("pkmc", "local", "pkc", "charikar", "greedypp")
TWO_APPROX_DDS = ("pwc", "pxy", "pbs")


class TestUDSGuarantees:
    @given(st.integers(0, 2**32 - 1), st.sampled_from(TWO_APPROX_UDS))
    @settings(max_examples=40, deadline=None)
    def test_two_approximation(self, seed, method):
        g = gnm_random_undirected(11, 26, seed=seed)
        if g.num_edges == 0:
            return
        optimum = brute_force_uds(g).density
        found = densest_subgraph(g, method=method).density
        assert found * 2 + 1e-9 >= optimum
        assert found <= optimum + 1e-9

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_lemma1_kstar_core_bound(self, seed):
        # Lemma 1: rho(k*-core) >= rho* / 2; moreover rho(k*-core) >= k*/2.
        g = gnm_random_undirected(12, 30, seed=seed)
        if g.num_edges == 0:
            return
        result = densest_subgraph(g, method="pkmc")
        assert result.density >= result.k_star / 2 - 1e-9

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_core_agreement_three_ways(self, seed):
        g = gnm_random_undirected(18, 44, seed=seed)
        if g.num_edges == 0:
            return
        from repro.algorithms.undirected import (
            local_core_decomposition,
            pkc_core_decomposition,
        )

        h_based, _ = local_core_decomposition(g)
        peel_based, _, _, _ = pkc_core_decomposition(g)
        nx_graph = nx.Graph(list(map(tuple, g.edges().tolist())))
        nx_graph.add_nodes_from(range(g.num_vertices))
        reference = nx.core_number(nx_graph)
        for v in range(g.num_vertices):
            assert h_based[v] == peel_based[v] == reference[v]

    def test_quality_on_every_replica(self):
        # On each dataset replica the k*-core density must obey Lemma 1's
        # lower bound k*/2 (the densest subgraph is >= k*-core density).
        from repro.datasets import dataset_names, load_undirected

        for abbr in dataset_names("undirected"):
            result = densest_subgraph(load_undirected(abbr))
            assert result.density >= result.k_star / 2


class TestDDSGuarantees:
    @given(st.integers(0, 2**32 - 1), st.sampled_from(TWO_APPROX_DDS))
    @settings(max_examples=25, deadline=None)
    def test_two_approximation(self, seed, method):
        d = gnm_random_directed(8, 22, seed=seed)
        if d.num_edges == 0:
            return
        optimum = brute_force_dds(d).density
        found = directed_densest_subgraph(d, method=method).density
        assert found * 2 + 1e-9 >= optimum
        assert found <= optimum + 1e-9

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_theorem2_pwc_pxy_agree(self, seed):
        d = gnm_random_directed(10, 30, seed=seed)
        if d.num_edges == 0:
            return
        pwc_result = directed_densest_subgraph(d, method="pwc")
        pxy_result = directed_densest_subgraph(d, method="pxy")
        assert pwc_result.x * pwc_result.y == pxy_result.x * pxy_result.y
        # Theorem 2 revised: w* upper-bounds the maximum product.
        assert pwc_result.w_star >= pwc_result.x * pwc_result.y

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_density_reported_matches_sets(self, seed):
        d = gnm_random_directed(9, 26, seed=seed)
        if d.num_edges == 0:
            return
        result = directed_densest_subgraph(d, method="pwc")
        assert d.density(result.s, result.t) == pytest.approx(result.density)

    def test_undirected_reduction(self):
        # Paper Section I: with S = T the directed density reduces to the
        # undirected one.  A symmetric digraph (edges both ways) must give
        # rho_directed(S, S) = 2 * rho_undirected(S) (each undirected edge
        # becomes two arcs, |S| = sqrt(|S||S|)).
        g = gnm_random_undirected(10, 24, seed=3)
        arcs = np.concatenate([g.edges(), g.edges()[:, ::-1]])
        d = DirectedGraph.from_edges(g.num_vertices, arcs)
        uds = brute_force_uds(g)
        s = uds.vertices
        assert d.density(s, s) == pytest.approx(2 * uds.density)


class TestInvariances:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_dds_relabel_invariance(self, seed):
        d = gnm_random_directed(9, 24, seed=seed)
        if d.num_edges == 0:
            return
        rng = np.random.default_rng(seed)
        perm = rng.permutation(d.num_vertices)
        relabeled = DirectedGraph.from_edges(
            d.num_vertices,
            np.stack([perm[d.edge_src], perm[d.edge_dst]], axis=1),
        )
        a = directed_densest_subgraph(d, method="pwc")
        b = directed_densest_subgraph(relabeled, method="pwc")
        assert a.w_star == b.w_star
        assert a.density == pytest.approx(b.density)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_dds_reversal_symmetry(self, seed):
        # Reversing all edges swaps the roles of S and T: w* and the
        # maximum cn-product are invariant.  The returned core may differ
        # in density when several maximum cn-pairs tie (e.g. [4, 2] vs
        # [2, 4]) — any of them is a valid 2-approximation — so density is
        # only checked against the (reversal-invariant) optimum.
        d = gnm_random_directed(9, 24, seed=seed)
        if d.num_edges == 0:
            return
        forward = directed_densest_subgraph(d, method="pwc")
        backward = directed_densest_subgraph(d.reversed(), method="pwc")
        assert forward.w_star == backward.w_star
        assert forward.x * forward.y == backward.x * backward.y
        optimum = brute_force_dds(d).density
        assert forward.density * 2 + 1e-9 >= optimum
        assert backward.density * 2 + 1e-9 >= optimum

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_uds_isolated_vertices_irrelevant(self, seed):
        g = gnm_random_undirected(12, 28, seed=seed)
        if g.num_edges == 0:
            return
        padded = UndirectedGraph.from_edges(g.num_vertices + 5, g.edges())
        a = densest_subgraph(g)
        b = densest_subgraph(padded)
        assert a.density == pytest.approx(b.density)
        assert a.k_star == b.k_star
