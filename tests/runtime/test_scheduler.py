"""Unit tests for the simulated loop schedulers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.runtime import compute_thread_loads


class TestStatic:
    def test_uniform_costs_balanced(self):
        loads = compute_thread_loads(np.ones(100), 4, schedule="static")
        assert loads.tolist() == [25.0, 25.0, 25.0, 25.0]

    def test_skewed_costs_imbalanced(self):
        costs = np.zeros(100)
        costs[:25] = 100.0  # all the work in the first block
        loads = compute_thread_loads(costs, 4, schedule="static")
        assert loads.max() == pytest.approx(2500.0)
        assert loads.min() == 0.0

    def test_conserves_total(self):
        costs = np.arange(57, dtype=float)
        loads = compute_thread_loads(costs, 8, schedule="static")
        assert loads.sum() == pytest.approx(costs.sum())


class TestCyclic:
    def test_round_robin(self):
        costs = np.array([1.0, 2.0, 3.0, 4.0])
        loads = compute_thread_loads(costs, 2, schedule="static_cyclic", chunk=1)
        assert loads.tolist() == [4.0, 6.0]

    def test_chunked(self):
        costs = np.array([1.0, 1.0, 5.0, 5.0])
        loads = compute_thread_loads(costs, 2, schedule="static_cyclic", chunk=2)
        assert loads.tolist() == [2.0, 10.0]


class TestDynamic:
    def test_dynamic_beats_static_on_skew(self):
        costs = np.zeros(64)
        costs[:16] = 10.0
        static = compute_thread_loads(costs, 4, schedule="static").max()
        dynamic = compute_thread_loads(costs, 4, schedule="dynamic", chunk=1).max()
        assert dynamic < static

    def test_tasks_makespan_at_least_max_task(self):
        costs = np.array([100.0, 1.0, 1.0, 1.0])
        loads = compute_thread_loads(costs, 4, schedule="tasks")
        assert loads.max() == pytest.approx(100.0)

    def test_tasks_on_equal_costs_balanced(self):
        loads = compute_thread_loads(np.ones(40), 8, schedule="tasks")
        assert loads.max() == pytest.approx(5.0)


class TestValidation:
    def test_single_thread_gets_everything(self):
        loads = compute_thread_loads(np.array([3.0, 4.0]), 1)
        assert loads.tolist() == [7.0]

    def test_empty_costs(self):
        loads = compute_thread_loads(np.array([]), 4)
        assert loads.tolist() == [0.0] * 4

    def test_zero_threads_rejected(self):
        with pytest.raises(SimulationError):
            compute_thread_loads(np.ones(4), 0)

    def test_negative_costs_rejected(self):
        with pytest.raises(SimulationError):
            compute_thread_loads(np.array([-1.0]), 2)

    def test_unknown_schedule_rejected(self):
        with pytest.raises(SimulationError):
            compute_thread_loads(np.ones(4), 2, schedule="magic")


class TestProperties:
    @given(
        st.lists(st.floats(0, 100), min_size=1, max_size=60),
        st.integers(1, 16),
        st.sampled_from(["static", "static_cyclic", "dynamic", "tasks"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_total_work_conserved(self, costs, threads, schedule):
        costs = np.asarray(costs)
        loads = compute_thread_loads(costs, threads, schedule=schedule)
        assert loads.sum() == pytest.approx(costs.sum(), rel=1e-9, abs=1e-9)
        assert loads.size == threads

    @given(st.lists(st.floats(0, 100), min_size=1, max_size=60), st.integers(1, 16))
    @settings(max_examples=40, deadline=None)
    def test_makespan_bounds(self, costs, threads):
        costs = np.asarray(costs)
        loads = compute_thread_loads(costs, threads, schedule="tasks")
        lower = max(costs.max(initial=0.0), costs.sum() / threads)
        assert loads.max() >= lower - 1e-9
        assert loads.max() <= costs.sum() + 1e-9
