"""Unit tests for the simulated shared-memory runtime."""

import numpy as np
import pytest

from repro.errors import (
    SimMemoryLimitExceeded,
    SimTimeLimitExceeded,
    SimulationError,
)
from repro.graph import UndirectedGraph
from repro.runtime import CostModel, SimRuntime

WORK_ONLY = CostModel(
    spawn_base_seconds=0.0,
    spawn_per_thread_seconds=0.0,
    barrier_base_seconds=0.0,
    barrier_log_seconds=0.0,
    atomic_seconds=0.0,
)


class TestClock:
    def test_starts_at_zero(self):
        assert SimRuntime(4).now == 0.0

    def test_serial_charge(self):
        rt = SimRuntime(1, cost_model=CostModel(work_unit_seconds=1e-6))
        rt.charge_serial(1000)
        assert rt.now == pytest.approx(1e-3)

    def test_negative_serial_rejected(self):
        with pytest.raises(SimulationError):
            SimRuntime(1).charge_serial(-1)

    def test_zero_threads_rejected(self):
        with pytest.raises(SimulationError):
            SimRuntime(0)

    def test_parfor_speedup_ideal_without_overheads(self):
        costs = np.ones(1024)
        t1 = SimRuntime(1, cost_model=WORK_ONLY)
        t8 = SimRuntime(8, cost_model=WORK_ONLY)
        t1.parfor(costs)
        t8.parfor(costs)
        assert t1.now / t8.now == pytest.approx(8.0)

    def test_parfor_scalar_splits_evenly(self):
        rt = SimRuntime(4, cost_model=WORK_ONLY)
        rt.parfor(400.0)
        assert rt.now == pytest.approx(100 * WORK_ONLY.work_unit_seconds)

    def test_imbalance_shows_in_breakdown(self):
        costs = np.zeros(64)
        costs[0] = 640.0
        rt = SimRuntime(8, cost_model=WORK_ONLY)
        rt.parfor(costs, schedule="tasks")
        assert rt.breakdown.imbalance > 0
        assert rt.breakdown.work == pytest.approx(
            WORK_ONLY.work_seconds(640 / 8)
        )

    def test_overhead_dominates_tiny_loops(self):
        rt = SimRuntime(64)
        for _ in range(100):
            rt.parfor(np.ones(4))
        assert rt.breakdown.spawn + rt.breakdown.barrier > rt.breakdown.work

    def test_parallel_region_amortises_spawn(self):
        per_loop = SimRuntime(32)
        for _ in range(10):
            per_loop.parfor(np.ones(32))
        region = SimRuntime(32)
        with region.parallel_region():
            for _ in range(10):
                region.parfor(np.ones(32))
        assert region.breakdown.spawn < per_loop.breakdown.spawn

    def test_determinism(self):
        def run():
            rt = SimRuntime(16)
            with rt.parallel_region():
                rt.parfor(np.arange(100, dtype=float), schedule="dynamic")
                rt.par_tasks(np.arange(10, dtype=float), atomic_ops=50)
            return rt.now

        assert run() == run()

    def test_atomic_cost_counted(self):
        quiet = SimRuntime(8, cost_model=WORK_ONLY)
        noisy = SimRuntime(
            8,
            cost_model=CostModel(
                spawn_base_seconds=0.0,
                spawn_per_thread_seconds=0.0,
                barrier_base_seconds=0.0,
                barrier_log_seconds=0.0,
                atomic_seconds=1e-7,
            ),
        )
        quiet.parfor(np.ones(8), atomic_ops=1000)
        noisy.parfor(np.ones(8), atomic_ops=1000)
        assert noisy.now > quiet.now
        assert noisy.metrics.atomic_ops == 1000


class TestLimits:
    def test_time_limit_raises(self):
        rt = SimRuntime(1, time_limit=1e-9)
        with pytest.raises(SimTimeLimitExceeded):
            rt.charge_serial(10_000)

    def test_time_limit_exception_carries_values(self):
        rt = SimRuntime(1, time_limit=1e-9)
        with pytest.raises(SimTimeLimitExceeded) as excinfo:
            rt.charge_serial(10_000)
        assert excinfo.value.limit == 1e-9
        assert excinfo.value.elapsed > 1e-9

    def test_memory_limit(self):
        rt = SimRuntime(4, memory_limit_bytes=100)
        with pytest.raises(SimMemoryLimitExceeded):
            rt.allocate(30, per_thread=True)  # books 120 bytes

    def test_memory_free_restores(self):
        rt = SimRuntime(2, memory_limit_bytes=100)
        booked = rt.allocate(40)
        rt.free(booked)
        rt.allocate(80)  # would fail if the first allocation leaked
        assert rt.current_memory_bytes == 80

    def test_allocation_context_manager(self):
        rt = SimRuntime(1)
        with rt.allocation(64):
            assert rt.current_memory_bytes == 64
        assert rt.current_memory_bytes == 0

    def test_peak_memory_tracked(self):
        rt = SimRuntime(1)
        with rt.allocation(100):
            pass
        rt.allocate(10)
        assert rt.metrics.peak_memory_bytes == 100

    def test_allocate_graph_per_thread(self):
        rt = SimRuntime(8)
        g = UndirectedGraph.from_edges(4, [(0, 1), (2, 3)])
        booked = rt.allocate_graph(g, per_thread=True)
        assert booked == 8 * rt.cost_model.graph_bytes(4, 2)

    def test_bad_free_rejected(self):
        rt = SimRuntime(1)
        with pytest.raises(SimulationError):
            rt.free(10)


class TestMetrics:
    def test_loop_and_item_counters(self):
        rt = SimRuntime(4)
        rt.parfor(np.ones(10))
        rt.parfor(np.ones(5))
        assert rt.metrics.parallel_loops == 2
        assert rt.metrics.items_processed == 15

    def test_breakdown_total_matches_clock(self):
        rt = SimRuntime(16)
        with rt.parallel_region():
            rt.parfor(np.arange(50, dtype=float), atomic_ops=10)
        rt.charge_serial(100)
        assert rt.breakdown.total == pytest.approx(rt.now)

    def test_breakdown_as_dict_keys(self):
        rt = SimRuntime(2)
        keys = set(rt.breakdown.as_dict())
        assert keys == {
            "work", "imbalance", "spawn", "barrier", "atomic", "serial", "total",
        }

    def test_run_metrics_as_dict(self):
        rt = SimRuntime(2)
        rt.parfor(np.ones(3))
        flat = rt.metrics.as_dict()
        assert flat["parallel_loops"] == 1
        assert flat["items_processed"] == 3


class TestCostModelSensitivity:
    def test_work_time_scales_linearly_with_unit_cost(self):
        fast = SimRuntime(4, cost_model=CostModel(work_unit_seconds=1e-9))
        slow = SimRuntime(4, cost_model=CostModel(work_unit_seconds=2e-9))
        fast.parfor(np.full(64, 100.0))
        slow.parfor(np.full(64, 100.0))
        ratio = (slow.breakdown.work) / (fast.breakdown.work)
        assert ratio == pytest.approx(2.0)

    def test_algorithm_ranking_stable_under_cost_rescale(self):
        # Scaling every cost uniformly must not change who wins — the
        # experiments' conclusions are not artefacts of the calibration.
        from repro.core import pkmc
        from repro.algorithms.undirected import pbu_uds
        from repro.graph import chung_lu_undirected

        g = chung_lu_undirected(1500, 7000, seed=6)
        for scale in (0.1, 1.0, 10.0):
            model = CostModel(
                work_unit_seconds=5e-9 * scale,
                spawn_base_seconds=4e-6 * scale,
                spawn_per_thread_seconds=5e-7 * scale,
                barrier_base_seconds=1e-6 * scale,
                barrier_log_seconds=8e-7 * scale,
                atomic_seconds=2.5e-8 * scale,
            )
            fast = pkmc(g, runtime=SimRuntime(32, cost_model=model))
            slow = pbu_uds(g, runtime=SimRuntime(32, cost_model=model))
            assert fast.simulated_seconds < slow.simulated_seconds
