"""Integration of the SimRuntime accounting with every algorithm.

These tests pin down the *contract* between algorithms and the simulated
runtime: passing a runtime must never change an answer, must advance the
clock, and more threads must not make the work-dominated algorithms
slower (the overhead-dominated ones — PKC, PBD — are allowed to degrade,
that is their paper-documented behaviour).
"""

import numpy as np
import pytest

from repro.core import max_y_for_x, pkmc, pwc, winduced_subgraph, wstar_subgraph, xy_core
from repro.graph import chung_lu_directed, chung_lu_undirected
from repro.runtime import SimRuntime


@pytest.fixture(scope="module")
def undirected():
    return chung_lu_undirected(2_000, 10_000, seed=0)


@pytest.fixture(scope="module")
def directed():
    return chung_lu_directed(2_000, 10_000, seed=1)


class TestAnswersUnchangedByRuntime:
    def test_pkmc(self, undirected):
        bare = pkmc(undirected)
        timed = pkmc(undirected, runtime=SimRuntime(8))
        assert bare.k_star == timed.k_star
        assert bare.vertices.tolist() == timed.vertices.tolist()
        assert timed.simulated_seconds > 0

    def test_pwc(self, directed):
        bare = pwc(directed)
        timed = pwc(directed, runtime=SimRuntime(8))
        assert (bare.x, bare.y, bare.w_star) == (timed.x, timed.y, timed.w_star)
        assert timed.simulated_seconds > 0

    def test_xy_core(self, directed):
        rt = SimRuntime(4)
        bare = xy_core(directed, 2, 2)
        timed = xy_core(directed, 2, 2, runtime=rt)
        assert np.array_equal(bare.edge_mask, timed.edge_mask)
        assert rt.now > 0
        assert rt.metrics.parallel_loops == timed.rounds

    def test_max_y_for_x(self, directed):
        rt = SimRuntime(4)
        bare_y, _ = max_y_for_x(directed, 2)
        timed_y, _ = max_y_for_x(directed, 2, runtime=rt)
        assert bare_y == timed_y
        assert rt.now > 0

    def test_winduced_subgraph(self, directed):
        rt = SimRuntime(4)
        bare = winduced_subgraph(directed, 4)
        timed = winduced_subgraph(directed, 4, runtime=rt)
        assert np.array_equal(bare, timed)
        assert rt.now > 0

    def test_wstar_subgraph(self, directed):
        rt = SimRuntime(4)
        bare = wstar_subgraph(directed)
        timed = wstar_subgraph(directed, runtime=rt)
        assert bare.w_star == timed.w_star
        assert rt.now > 0


class TestThreadScalingContract:
    @pytest.mark.parametrize("method", ["pkmc", "local", "pbu", "pfw"])
    def test_uds_work_dominated_algorithms_speed_up(self, undirected, method):
        from repro import densest_subgraph

        kwargs = {"num_rounds": 64} if method == "pfw" else {}
        t1 = densest_subgraph(
            undirected, method=method, num_threads=1, **kwargs
        ).simulated_seconds
        t16 = densest_subgraph(
            undirected, method=method, num_threads=16, **kwargs
        ).simulated_seconds
        assert t16 < t1

    @pytest.mark.parametrize("method", ["pwc", "pxy"])
    def test_dds_algorithms_speed_up(self, directed, method):
        from repro import directed_densest_subgraph

        t1 = directed_densest_subgraph(
            directed, method=method, num_threads=1
        ).simulated_seconds
        t16 = directed_densest_subgraph(
            directed, method=method, num_threads=16
        ).simulated_seconds
        assert t16 < t1

    def test_same_threads_same_time(self, undirected):
        a = pkmc(undirected, runtime=SimRuntime(8)).simulated_seconds
        b = pkmc(undirected, runtime=SimRuntime(8)).simulated_seconds
        assert a == b

    def test_breakdown_explains_total(self, undirected):
        rt = SimRuntime(16)
        pkmc(undirected, runtime=rt)
        assert rt.breakdown.total == pytest.approx(rt.now)
        assert rt.breakdown.work > 0
        assert rt.metrics.parallel_loops > 0
