"""Unit tests for the cost model."""

import pytest

from repro.runtime import DEFAULT_COST_MODEL, CostModel


class TestCostModel:
    def test_single_thread_has_no_parallel_overhead(self):
        model = CostModel()
        assert model.spawn_seconds(1) == 0.0
        assert model.barrier_seconds(1) == 0.0

    def test_spawn_grows_with_threads(self):
        model = CostModel()
        assert model.spawn_seconds(64) > model.spawn_seconds(2)

    def test_barrier_log_growth(self):
        model = CostModel()
        b2, b4, b16 = (model.barrier_seconds(p) for p in (2, 4, 16))
        assert b2 < b4 < b16
        # log-tree barrier: growth from 4 to 16 is 2x the log increment.
        assert (b16 - b4) == pytest.approx(2 * (b4 - b2))

    def test_atomic_contention(self):
        model = CostModel()
        assert model.atomic_op_seconds(32) > model.atomic_op_seconds(1)
        assert model.atomic_op_seconds(1) == pytest.approx(model.atomic_seconds)

    def test_work_linear(self):
        model = CostModel(work_unit_seconds=2e-9)
        assert model.work_seconds(1e6) == pytest.approx(2e-3)

    def test_graph_bytes(self):
        model = CostModel(bytes_per_edge=16, bytes_per_vertex=24)
        assert model.graph_bytes(10, 100) == 10 * 24 + 100 * 16

    def test_default_model_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_COST_MODEL.work_unit_seconds = 1.0

    def test_custom_model_overrides(self):
        model = CostModel(work_unit_seconds=1.0)
        assert model.work_seconds(3) == 3.0
