"""Budget-enforcement edge cases: exact boundaries, bad limits, nesting.

These document behaviour the docstrings now promise explicitly:

* ``time_limit`` is enforced with ``>`` — landing exactly on the budget is
  within budget (a DNF needs to *exceed* the paper's cutoff);
* negative budgets are rejected at construction, not discovered mid-run;
* ``parallel_region`` nests like OpenMP nested parallelism — each entry
  charges its own spawn, and leaving an inner region restores (not ends)
  the outer one.
"""

import numpy as np
import pytest

from repro.errors import (
    SimMemoryLimitExceeded,
    SimTimeLimitExceeded,
    SimulationError,
)
from repro.runtime import CostModel, SimRuntime

UNIT_WORK = CostModel(
    work_unit_seconds=1.0,
    spawn_base_seconds=0.0,
    spawn_per_thread_seconds=0.0,
    barrier_base_seconds=0.0,
    barrier_log_seconds=0.0,
    atomic_seconds=0.0,
    sequential_overhead_seconds=0.0,
)


class TestTimeLimitBoundary:
    def test_exactly_reaching_the_limit_is_within_budget(self):
        rt = SimRuntime(1, cost_model=UNIT_WORK, time_limit=10.0)
        rt.charge_serial(10.0)  # lands exactly on the limit
        assert rt.now == pytest.approx(10.0)

    def test_exceeding_by_epsilon_raises(self):
        rt = SimRuntime(1, cost_model=UNIT_WORK, time_limit=10.0)
        rt.charge_serial(10.0)
        with pytest.raises(SimTimeLimitExceeded):
            rt.charge_serial(1e-9)

    def test_zero_limit_allows_zero_cost_work_only(self):
        rt = SimRuntime(1, cost_model=UNIT_WORK, time_limit=0.0)
        rt.charge_serial(0.0)  # 0 == 0: still within budget
        with pytest.raises(SimTimeLimitExceeded):
            rt.charge_serial(1.0)

    def test_exception_reports_elapsed_and_limit(self):
        rt = SimRuntime(1, cost_model=UNIT_WORK, time_limit=5.0)
        with pytest.raises(SimTimeLimitExceeded) as excinfo:
            rt.charge_serial(7.0)
        assert excinfo.value.limit == 5.0
        assert excinfo.value.elapsed == pytest.approx(7.0)


class TestInvalidBudgets:
    def test_negative_time_limit_rejected_at_construction(self):
        with pytest.raises(SimulationError):
            SimRuntime(1, time_limit=-1.0)

    def test_negative_memory_limit_rejected_at_construction(self):
        with pytest.raises(SimulationError):
            SimRuntime(1, memory_limit_bytes=-1)

    def test_zero_memory_limit_is_valid_and_trips_on_first_byte(self):
        rt = SimRuntime(1, memory_limit_bytes=0)
        rt.allocate(0)  # zero bytes at a zero budget: exactly on the line
        with pytest.raises(SimMemoryLimitExceeded):
            rt.allocate(1)


class TestMemoryBoundary:
    def test_exactly_filling_the_budget_is_within_it(self):
        rt = SimRuntime(1, memory_limit_bytes=1024)
        rt.allocate(1024)
        assert rt.current_memory_bytes == 1024

    def test_one_byte_over_raises(self):
        rt = SimRuntime(1, memory_limit_bytes=1024)
        rt.allocate(1024)
        with pytest.raises(SimMemoryLimitExceeded):
            rt.allocate(1)

    def test_per_thread_multiplier_counts_against_budget(self):
        rt = SimRuntime(8, memory_limit_bytes=1000)
        with pytest.raises(SimMemoryLimitExceeded):
            rt.allocate(200, per_thread=True)  # 1600 booked


class TestNestedRegions:
    def test_nested_region_charges_spawn_per_entry(self):
        flat = SimRuntime(8)
        with flat.parallel_region():
            pass
        nested = SimRuntime(8)
        with nested.parallel_region():
            with nested.parallel_region():
                pass
        assert nested.breakdown.spawn == pytest.approx(2 * flat.breakdown.spawn)

    def test_inner_exit_restores_outer_region_state(self):
        rt = SimRuntime(8)
        with rt.parallel_region():
            with rt.parallel_region():
                rt.parfor(np.ones(8))
            spawn_before = rt.breakdown.spawn
            # Still inside the outer region: the loop must not re-spawn.
            rt.parfor(np.ones(8))
            assert rt.breakdown.spawn == pytest.approx(spawn_before)

    def test_loops_after_region_exit_pay_their_own_spawn(self):
        rt = SimRuntime(8)
        with rt.parallel_region():
            pass
        spawn_after_region = rt.breakdown.spawn
        rt.parfor(np.ones(8))
        assert rt.breakdown.spawn > spawn_after_region

    def test_region_survives_exception_and_restores_state(self):
        rt = SimRuntime(8)
        with pytest.raises(RuntimeError):
            with rt.parallel_region():
                raise RuntimeError("kernel failed")
        spawn_before = rt.breakdown.spawn
        rt.parfor(np.ones(8))  # outside any region again: pays spawn
        assert rt.breakdown.spawn > spawn_before
