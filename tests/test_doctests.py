"""Run the doctests embedded in the library's docstrings."""

import doctest

import pytest

import repro.api
import repro.flow.maxflow
import repro.graph.builder
import repro.graph.directed
import repro.graph.undirected

MODULES = [
    repro.api,
    repro.graph.undirected,
    repro.graph.directed,
    repro.graph.builder,
    repro.flow.maxflow,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    failures, tests = doctest.testmod(
        module, verbose=False, optionflags=doctest.ELLIPSIS
    )
    assert tests > 0, f"{module.__name__} has no doctests to run"
    assert failures == 0
