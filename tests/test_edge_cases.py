"""Edge-case sweep across the public API surface.

Degenerate inputs (empty masks, overlapping S/T, singleton graphs,
star graphs) that the mainline tests do not exercise.
"""

import numpy as np
import pytest

from repro import densest_subgraph, directed_densest_subgraph
from repro.core import h_index, pkmc, pwc
from repro.errors import EmptyGraphError
from repro.graph import DirectedGraph, UndirectedGraph


class TestDegenerateGraphs:
    def test_single_edge_undirected(self):
        g = UndirectedGraph.from_edges(2, [(0, 1)])
        result = densest_subgraph(g)
        assert result.density == pytest.approx(0.5)
        assert result.k_star == 1

    def test_star_graph_uds(self):
        # Star: k* = 1; the whole star has density (n-1)/n -> the k*-core
        # is everything and density approaches 1.
        n = 12
        g = UndirectedGraph.from_edges(n, [(0, i) for i in range(1, n)])
        result = densest_subgraph(g)
        assert result.k_star == 1
        assert result.density == pytest.approx((n - 1) / n)

    def test_two_cliques_different_sizes(self):
        # K5 and K3: the k*-core is exactly the K5.
        edges = [(i, j) for i in range(5) for j in range(i + 1, 5)]
        edges += [(i, j) for i in range(5, 8) for j in range(i + 1, 8)]
        g = UndirectedGraph.from_edges(8, edges)
        result = densest_subgraph(g)
        assert result.vertices.tolist() == [0, 1, 2, 3, 4]

    def test_directed_cycle(self):
        # A directed n-cycle: every [1,1]-core is the whole thing; density
        # n/sqrt(n*n) = 1.
        n = 6
        d = DirectedGraph.from_edges(n, [(i, (i + 1) % n) for i in range(n)])
        result = directed_densest_subgraph(d)
        assert result.density == pytest.approx(1.0)
        assert (result.x, result.y) == (1, 1)

    def test_directed_bidirectional_pair(self):
        d = DirectedGraph.from_edges(2, [(0, 1), (1, 0)])
        result = directed_densest_subgraph(d)
        assert result.density == pytest.approx(1.0)

    def test_all_methods_reject_empty(self):
        from repro import DDS_METHODS, UDS_METHODS

        g = UndirectedGraph.empty(3)
        d = DirectedGraph.empty(3)
        for method in UDS_METHODS:
            with pytest.raises((EmptyGraphError, ValueError)):
                densest_subgraph(g, method=method)
        for method in DDS_METHODS:
            with pytest.raises((EmptyGraphError, ValueError)):
                directed_densest_subgraph(d, method=method)


class TestMaskEdgeCases:
    def test_all_false_edge_mask(self, fig2_graph):
        sub = fig2_graph.subgraph_from_edge_mask(
            np.zeros(fig2_graph.num_edges, dtype=bool)
        )
        assert sub.num_edges == 0
        assert sub.num_vertices == fig2_graph.num_vertices

    def test_all_true_edge_mask(self, fig2_graph):
        sub = fig2_graph.subgraph_from_edge_mask(
            np.ones(fig2_graph.num_edges, dtype=bool)
        )
        assert sub == fig2_graph

    def test_st_induced_with_overlap(self):
        d = DirectedGraph.from_edges(3, [(0, 1), (1, 2), (2, 0)])
        sub = d.st_induced_subgraph([0, 1, 2], [0, 1, 2])
        assert sub.num_edges == 3

    def test_induced_subgraph_empty_selection(self, fig2_graph):
        sub, ids = fig2_graph.induced_subgraph([])
        assert sub.num_vertices == 0
        assert ids.size == 0


class TestHIndexEdgeCases:
    def test_all_zero_values(self):
        assert h_index(np.zeros(10, dtype=np.int64)) == 0

    def test_huge_uniform_values(self):
        assert h_index(np.full(7, 10**9)) == 7

    def test_pkmc_on_disconnected_equal_cliques(self):
        # Two identical K4s: both are in the k*-core (paper remark: any
        # connected component is a valid answer).
        edges = [(i, j) for i in range(4) for j in range(i + 1, 4)]
        edges += [(i + 4, j + 4) for i in range(4) for j in range(i + 1, 4)]
        g = UndirectedGraph.from_edges(8, edges)
        result = pkmc(g)
        assert result.num_vertices == 8
        assert result.k_star == 3

    def test_pwc_on_two_equal_blocks(self):
        # Two disjoint 2x2 complete blocks: same w*; the returned core is
        # their union (both satisfy the constraints).
        edges = [(0, 2), (0, 3), (1, 2), (1, 3)]
        edges += [(4, 6), (4, 7), (5, 6), (5, 7)]
        d = DirectedGraph.from_edges(8, edges)
        result = pwc(d)
        assert result.w_star == 4
        assert (result.x, result.y) == (2, 2)
        assert result.s_size == 4  # both blocks' sources


class TestResultConsistency:
    def test_uds_density_matches_reported_vertices(self, small_random_undirected):
        from repro.algorithms.undirected.common import induced_density

        for method in ("pkmc", "local", "pkc", "charikar", "greedypp"):
            for seed in range(3):
                g = small_random_undirected(seed)
                if g.num_edges == 0:
                    continue
                result = densest_subgraph(g, method=method)
                assert induced_density(g, result.vertices) == pytest.approx(
                    result.density
                ), (method, seed)

    def test_dds_density_matches_reported_sets(self, small_random_directed):
        for method in ("pwc", "pxy"):
            for seed in range(3):
                d = small_random_directed(seed)
                if d.num_edges == 0:
                    continue
                result = directed_densest_subgraph(d, method=method)
                assert d.density(result.s, result.t) == pytest.approx(
                    result.density
                ), (method, seed)
