"""The lint gate: ``src/repro`` must stay clean under its own rules.

This is the in-tree equivalent of the CI ``repro-lint src/ --strict``
job — it runs inside tier-1 pytest so a rule violation fails the build
even without a separate CI system.
"""

from pathlib import Path

import repro
from repro.analysis import LintEngine
from repro.analysis.cli import main as lint_main

SRC_ROOT = Path(repro.__file__).parent


def test_src_repro_is_lint_clean():
    findings = LintEngine().lint_paths([SRC_ROOT])
    formatted = "\n".join(f.format() for f in findings)
    assert not findings, f"repro-lint found violations in src/repro:\n{formatted}"


def test_cli_strict_over_src_exits_zero(capsys):
    exit_code = lint_main([str(SRC_ROOT), "--strict"])
    out = capsys.readouterr().out
    assert exit_code == 0, out


def test_examples_are_determinism_clean():
    examples = SRC_ROOT.parent.parent / "examples"
    if not examples.is_dir():  # installed layout: nothing to check
        return
    findings = LintEngine(select=["R001"]).lint_paths([examples])
    formatted = "\n".join(f.format() for f in findings)
    assert not findings, f"examples use unseeded randomness/wall clock:\n{formatted}"
