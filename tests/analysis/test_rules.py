"""Each rule detects its planted violations — and nothing else."""

from pathlib import Path

import pytest

from repro.analysis import lint_source
from repro.analysis.engine import LintEngine

FIXTURE = Path(__file__).parent / "fixtures" / "planted_violations.py"


@pytest.fixture(scope="module")
def fixture_findings():
    return LintEngine().lint_file(FIXTURE)


def ids_at(findings, rule_id):
    return [f.line for f in findings if f.rule_id == rule_id]


class TestPlantedViolations:
    def test_every_rule_fires(self, fixture_findings):
        fired = {f.rule_id for f in fixture_findings}
        assert fired == {"R001", "R002", "R003", "R004", "R005", "R006"}

    def test_r001_findings(self, fixture_findings):
        lines = ids_at(fixture_findings, "R001")
        source = FIXTURE.read_text().splitlines()
        # wall clock, default_rng(), np.random.rand(), random.random()
        assert len(lines) == 4
        assert any("time.time()" in source[line - 1] for line in lines)
        assert any("default_rng()" in source[line - 1] for line in lines)
        assert any("np.random.rand()" in source[line - 1] for line in lines)
        assert any("random.random()" in source[line - 1] for line in lines)

    def test_r001_suppression_honoured(self, fixture_findings):
        source = FIXTURE.read_text().splitlines()
        for line in ids_at(fixture_findings, "R001"):
            assert "disable=R001" not in source[line - 1]

    def test_r002_findings(self, fixture_findings):
        assert len(ids_at(fixture_findings, "R002")) == 2  # blanket + bare

    def test_r003_finding_names_the_function(self, fixture_findings):
        findings = [f for f in fixture_findings if f.rule_id == "R003"]
        assert len(findings) == 1
        assert "undocumented_public_function" in findings[0].message

    def test_r004_finding(self, fixture_findings):
        assert len(ids_at(fixture_findings, "R004")) == 1

    def test_r005_findings(self, fixture_findings):
        # CSR: element write, in-place sort(), rebinding;
        # scratch: element write, in-place sort(), _scratch dict write.
        findings = [f for f in fixture_findings if f.rule_id == "R005"]
        assert len(findings) == 6
        messages = " ".join(f.message for f in findings)
        assert "element write" in messages
        assert "sort()" in messages
        assert "rebinding" in messages.lower()
        assert "scratch" in messages
        assert "`.heads()`" in messages
        assert "`_scratch`" in messages

    def test_r006_findings(self, fixture_findings):
        # entry write, mutating pop(), entry delete
        findings = [f for f in fixture_findings if f.rule_id == "R006"]
        assert len(findings) == 3
        messages = " ".join(f.message for f in findings)
        assert "`UDS_METHODS`" in messages
        assert "pop()" in messages
        assert "delete" in messages

    def test_findings_carry_fix_hints_and_severities(self, fixture_findings):
        for finding in fixture_findings:
            assert finding.fix_hint
            assert finding.severity in ("error", "warning")


class TestRuleEdgeCases:
    def test_r001_seeded_rng_is_clean(self):
        source = (
            "import numpy as np\n"
            "def f(seed):\n"
            '    """Doc."""\n'
            "    return np.random.default_rng(seed).random()\n"
        )
        assert lint_source(source) == []

    def test_r001_import_aliases_resolved(self):
        source = (
            "from time import perf_counter as pc\n"
            "def f():\n"
            '    """Doc."""\n'
            "    return pc()\n"
        )
        findings = lint_source(source)
        assert [f.rule_id for f in findings] == ["R001"]

    def test_r001_datetime_from_import(self):
        source = (
            "from datetime import datetime\n"
            "stamp = datetime.now()\n"
        )
        assert [f.rule_id for f in lint_source(source)] == ["R001"]

    def test_r002_narrow_handler_is_clean(self):
        source = (
            "def f():\n"
            '    """Doc."""\n'
            "    try:\n"
            "        return g()\n"
            "    except ValueError:\n"
            "        return None\n"
        )
        assert lint_source(source) == []

    def test_r002_silent_narrow_handler_flagged(self):
        source = (
            "try:\n"
            "    x = 1\n"
            "except ValueError:\n"
            "    pass\n"
        )
        findings = lint_source(source)
        assert [f.rule_id for f in findings] == ["R002"]
        assert "silently" in findings[0].message

    def test_r003_only_applies_to_exported_names(self):
        source = (
            "__all__ = ['documented']\n"
            "def documented():\n"
            '    """Doc."""\n'
            "def private_helper():\n"
            "    return 1\n"
        )
        assert lint_source(source) == []

    def test_r004_plain_float_compare_not_flagged(self):
        source = "ok = (a == b)\n"
        assert lint_source(source) == []

    def test_r004_density_method_call_flagged(self):
        source = "same = graph.density() == other.density()\n"
        assert [f.rule_id for f in lint_source(source)] == ["R004"]

    def test_r005_reads_are_clean(self):
        source = (
            "import numpy as np\n"
            "def f(graph, changed, heads):\n"
            '    """Doc."""\n'
            "    woken = np.zeros(3, dtype=bool)\n"
            "    woken[graph.indices[changed[heads]]] = True\n"
            "    return graph.indptr[1:]\n"
        )
        assert lint_source(source) == []

    def test_r005_self_construction_allowed_but_augassign_not(self):
        clean = (
            "class G:\n"
            '    """Doc."""\n'
            "    def __init__(self, indptr):\n"
            "        self.indptr = indptr\n"
        )
        assert lint_source(clean) == []
        dirty = (
            "class G:\n"
            '    """Doc."""\n'
            "    def shift(self):\n"
            "        self.indptr += 1\n"
        )
        assert [f.rule_id for f in lint_source(dirty)] == ["R005"]

    def test_r005_exempt_in_builder(self):
        source = "g.indptr[0] = 1\n"
        assert lint_source(source, path="src/repro/graph/builder.py") == []
        assert lint_source(source, path="src/repro/core/pkmc.py") != []

    def test_r005_scratch_reads_are_clean(self):
        source = (
            "def f(graph):\n"
            '    """Doc."""\n'
            "    heads = graph.heads()\n"
            "    return heads[graph.degrees() > 1] + graph.out_degrees().sum()\n"
        )
        assert lint_source(source) == []

    def test_r005_scratch_copy_then_mutate_is_clean(self):
        source = (
            "def f(graph):\n"
            '    """Doc."""\n'
            "    mine = graph.degrees().copy()\n"
            "    mine[0] = 0\n"
            "    mine.sort()\n"
            "    return mine\n"
        )
        assert lint_source(source) == []

    def test_r005_scratch_accessor_writes_flagged(self):
        findings = lint_source("graph.in_degrees()[2] = 5\n")
        assert [f.rule_id for f in findings] == ["R005"]
        assert "scratch" in findings[0].message
        findings = lint_source("graph.hindex_bins().fill(0)\n")
        assert [f.rule_id for f in findings] == ["R005"]

    def test_r005_scratch_dict_exempt_in_graph_classes(self):
        source = "self._scratch['degrees'] = value\n"
        assert lint_source(source, path="src/repro/graph/undirected.py") == []
        assert lint_source(source, path="src/repro/graph/directed.py") == []
        assert [
            f.rule_id
            for f in lint_source(source, path="src/repro/core/pkmc.py")
        ] == ["R005"]

    def test_r006_unregistered_solver_flagged_in_solver_module(self):
        source = (
            "def shiny_uds(graph):\n"
            '    """Doc."""\n'
            "    return None\n"
        )
        findings = lint_source(
            source, path="src/repro/algorithms/undirected/shiny.py"
        )
        assert [f.rule_id for f in findings] == ["R006"]
        assert "shiny_uds" in findings[0].message

    def test_r006_registered_solver_is_clean(self):
        source = (
            "from repro.engine.spec import register_solver\n"
            "@register_solver('shiny', kind='uds', guarantee='exact', cost='serial')\n"
            "def shiny_uds(graph):\n"
            '    """Doc."""\n'
            "    return None\n"
        )
        assert lint_source(
            source, path="src/repro/algorithms/undirected/shiny.py"
        ) == []

    def test_r006_solver_name_outside_solver_packages_is_clean(self):
        source = (
            "def sweep_uds(abbr):\n"
            '    """Doc."""\n'
            "    return abbr\n"
        )
        assert lint_source(source, path="examples/scaling_study.py") == []

    def test_r006_helpers_and_methods_in_solver_modules_are_clean(self):
        source = (
            "def _private_uds(graph):\n"
            "    return None\n"
            "def derive_pair(graph):\n"
            '    """Doc."""\n'
            "    return None\n"
            "class Port:\n"
            '    """Doc."""\n'
            "    def run_uds(self, graph):\n"
            '        """Doc."""\n'
            "        return None\n"
        )
        assert lint_source(
            source, path="src/repro/algorithms/undirected/helper.py"
        ) == []

    def test_r006_registry_mutation_exempt_in_spec(self):
        source = "_REGISTRY[key] = spec\n"
        assert lint_source(source, path="src/repro/engine/spec.py") == []
        assert [
            f.rule_id
            for f in lint_source(source, path="src/repro/api.py")
        ] == ["R006"]
