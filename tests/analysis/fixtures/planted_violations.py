"""Fixture with one deliberate violation of every lint rule (R001-R006).

This file is never imported; ``tests/analysis/test_rules.py`` lints it and
asserts every planted violation is detected with the right rule id and
line number.  Line positions matter: keep the ``PLANTED`` map in the test
in sync when editing.
"""

import random
import time

import numpy as np

__all__ = ["undocumented_public_function"]


def wall_clock_now():
    """R001: wall clock."""
    return time.time()


def unseeded_rng():
    """R001: unseeded numpy generator and legacy global RNG."""
    rng = np.random.default_rng()
    return rng.random() + np.random.rand()


def global_random():
    """R001: stdlib global RNG."""
    return random.random()


def swallow_everything():
    """R002: blanket handler with a silent pass."""
    try:
        return 1 / 0
    except Exception:
        pass


def bare_handler():
    """R002: bare except."""
    try:
        return int("x")
    except:
        return None


def undocumented_public_function():
    return 42


def compare_densities(result, expected):
    """R004: exact float equality on densities."""
    return result.density == expected.density


def mutate_csr(graph):
    """R005: writes into frozen CSR buffers."""
    graph.indptr[0] = 1
    graph.indices.sort()
    graph.indices = np.arange(3)


def mutate_scratch(graph):
    """R005: writes into memoized scratch buffers / the cache dict."""
    graph.heads()[0] = 7
    graph.degrees().sort()
    graph._scratch["degrees"] = None


def mutate_method_registry(solver):
    """R006: hand-edits the solver method tables."""
    UDS_METHODS["hacked"] = solver
    DDS_METHODS.pop("pwc")
    del SOLVER_REGISTRY[("uds", "pkmc")]


def suppressed_wall_clock():
    """Suppression check: this violation must NOT be reported."""
    return time.monotonic()  # repro-lint: disable=R001
