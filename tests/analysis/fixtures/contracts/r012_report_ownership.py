"""Fixture: R012 — RunReport writes outside repro.engine."""

import dataclasses


def restamp_report(result, report):
    """Replacing the engine-owned report wholesale."""
    result.report = report  # plant
    return result


def rewrite_breakdown(result):
    """Dict-valued fields mutate silently on a frozen dataclass."""
    result.report.breakdown["extra"] = 1.0  # plant
    return result


def bump_counter(result):
    """Augmented writes through a report chain are writes too."""
    result.report.iterations += 1  # plant
    return result


def drop_report(result):
    """Deleting the attribute is also an ownership violation."""
    del result.report  # plant
    return result


class CarrierError(RuntimeError):
    """Clean: carrier objects may *hold* a report they were given."""

    def __init__(self, report):
        super().__init__("parallel run failed")
        self.report = report

    def restamp(self, report):
        """But they must not rewrite it after construction."""
        self.report = report  # plant


def derive_readonly(result):
    """Clean: reads and dataclasses.replace produce new objects."""
    fresh = dataclasses.replace(result.report, cache_hit=True)
    return fresh.density + result.report.density


def suppressed_restamp(result):
    """A planted ownership violation, silenced with an inline disable."""
    result.report = None  # repro-lint: disable=R012
    return result
