"""Fixture: R011 — aliasing around the result-cache clone boundary."""

from collections import OrderedDict

from repro.store.memo import clone_result


def poke_raw_store(cache, key):
    """Reaching around the cache API hands out the stored object."""
    return cache._entries[key]  # plant


class LeakyCache:
    """A cache that skips the clone helper on both directions."""

    def __init__(self):
        self._entries = OrderedDict()

    def get(self, key):
        entry = self._entries.get(key)
        if entry is None:
            return None
        return entry  # plant

    def put(self, key, result):
        self._entries[key] = result  # plant


class CloningCache:
    """Clean: clone-on-get and clone-on-put, like ResultCache."""

    def __init__(self):
        self._entries = OrderedDict()

    def get(self, key):
        entry = self._entries.get(key)
        if entry is None:
            return None
        return clone_result(entry)

    def put(self, key, result):
        result = clone_result(result)
        self._entries[key] = result


class SuppressedCache:
    """A planted leak, silenced with an inline disable."""

    def __init__(self):
        self._entries = OrderedDict()

    def get(self, key):
        return self._entries.get(key)  # repro-lint: disable=R011

    def put(self, key, result):
        self._entries[key] = result  # repro-lint: disable=R011
