"""Fixture: R010 — aliased scratch/CSR buffers escaping into mutation."""

import numpy as np


def scatter_through_alias(graph, hits):
    """The classic escape: launder the accessor through a local."""
    deg = graph.degrees()
    np.subtract.at(deg, hits, 1)  # plant
    return deg


def out_argument_escape(graph, cap):
    """``out=`` writes into the shared buffer in place."""
    deg = graph.degrees()
    np.minimum(deg, cap, out=deg)  # plant
    return deg


def augmented_assignment_escape(graph):
    """In-place arithmetic mutates the shared buffer."""
    deg = graph.degrees()
    deg -= 1  # plant
    return deg


def element_write_escape(graph):
    """Element writes through a frozen-CSR alias."""
    ptr = graph.indptr
    ptr[0] = 0  # plant
    return ptr


def fill_method_escape(graph):
    """Mutating method on an aliased scratch buffer."""
    bins = graph.hindex_bins()
    bins.fill(0)  # plant
    return bins


def slice_keeps_taint(graph):
    """Basic slicing returns a view, so the taint survives."""
    tail = graph.heads()[1:]
    tail.sort()  # plant
    return tail


def astype_nocopy_keeps_taint(graph, idx):
    """``astype(copy=False)`` may alias, so the taint survives."""
    deg = graph.degrees()
    wide = deg.astype(np.int64, copy=False)
    np.add.at(wide, idx, 1)  # plant
    return wide


def copy_kills_taint(graph, hits):
    """Clean: a private copy is free to mutate."""
    mine = graph.degrees().copy()
    np.subtract.at(mine, hits, 1)
    mine.fill(0)
    return mine


def rebinding_kills_taint(graph):
    """Clean: arithmetic produces a fresh array, and the name is rebound."""
    deg = graph.degrees()
    deg = deg + 1
    deg[0] = 5
    return deg


def reads_are_fine(graph):
    """Clean: reductions and reads never mutate the shared buffer."""
    deg = graph.degrees()
    return float(deg.sum()) + float(deg.max())


def suppressed_scatter(graph, hits):
    """A planted escape, silenced with an inline disable."""
    deg = graph.degrees()
    np.add.at(deg, hits, 1)  # repro-lint: disable=R010
    return deg
