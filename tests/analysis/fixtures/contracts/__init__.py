"""Planted-violation fixtures for the contract rules R007–R012.

Never imported: ``tests/analysis/test_contracts.py`` lints each module
with the matching rule selected.  Lines ending in a ``# plant`` marker
are the expected finding anchors; lines carrying a
``# repro-lint: disable=RxxX`` comment are planted violations that must
stay suppressed.  The test derives expected line numbers by scanning for
the markers, so the fixtures cannot silently drift out of sync.
"""
