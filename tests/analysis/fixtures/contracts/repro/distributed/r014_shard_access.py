"""R014 fixture: direct shard ``.npz`` access outside the shard store.

Lines ending with ``# plant`` must fire; everything else must not.
The directory name matters — R014 exempts ``repro/store/shard`` paths,
so this fixture lives under a ``repro/distributed/`` directory.
"""

import zipfile

import numpy as np

from repro.store.shard import load_sharded


def raw_reads_bypassing_facade(directory, index):
    data = np.load("cache/shard_00000.npz")  # plant
    mapped = np.memmap(f"{directory}/shard_{index:05d}.npz", mode="r")  # plant
    container = zipfile.ZipFile(f"{directory}/shard_{index:05d}.npz")  # plant
    handle = open(f"{directory}/shard_{index:05d}.npz", "rb")  # plant
    return data, mapped, container, handle


def raw_write_bypassing_manifest(indptr, indices):
    np.savez("cache/shard_00001.npz", indptr=indptr, indices=indices)  # plant


def forensic_dump_kept_for_debugging(directory):
    # The sanctioned escape hatch: justified inline suppression.
    return np.load(f"{directory}/shard_00000.npz")  # repro-lint: disable=R014 (offline forensics)


def facade_access_is_fine(directory, vertex):
    # The intended shape: all shard reads go through ShardedGraph.
    graph = load_sharded(directory, memory_budget_bytes=1 << 20)
    return graph.shard(int(graph.shard_of(vertex)))


def unrelated_files_are_fine(path):
    # Plain snapshots and variable paths are not shard members.
    snapshot = np.load("cache/graph.npz")
    anything = open(path, "rb")
    return snapshot, anything
