"""R013 fixture: direct numpy kernel primitives inside a kernels/ path.

Lines ending with ``# plant`` must fire; everything else must not.
The directory name matters — R013 is path-scoped to ``kernels/``.
"""

import numpy as np

from repro.backends import get_backend


def histogram_bypassing_dispatch(seg_rows, clipped, total):
    counts = np.bincount(seg_rows, minlength=total)  # plant
    offsets = np.add.reduceat(clipped, seg_rows)  # plant
    return counts, offsets


def sort_family_bypassing_dispatch(values, seg_rows):
    order = np.lexsort((-values, seg_rows))  # plant
    ranked = np.sort(values)  # plant
    picked = np.argsort(values, kind="stable")  # plant
    where = np.searchsorted(ranked, 3)  # plant
    survivors = np.count_nonzero(values > 0)  # plant
    return order, ranked, picked, where, survivors


def reference_kept_for_property_tests(values, seg_rows):
    # The sanctioned escape hatch: justified inline suppression.
    return np.lexsort((-values, seg_rows))  # repro-lint: disable=R013 (reference formulation)


def glue_numpy_is_fine(starts, lengths):
    # Shape casts, range arithmetic and cumsums are not dispatch-worthy.
    starts = np.asarray(starts, dtype=np.int64)
    out = np.ones(int(lengths.sum()), dtype=np.int64)
    np.cumsum(out, out=out)
    rows = np.repeat(np.arange(starts.size), lengths)
    return np.concatenate([out, rows])


def dispatched_path(graph, h):
    # The intended shape: route the primitive through the backend.
    return get_backend().sweep_values(graph, h)
