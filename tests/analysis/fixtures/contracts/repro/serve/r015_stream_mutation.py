"""R015 fixture: mutating DynamicKStarCore internals outside the stream stack.

Lines ending with ``# plant`` must fire; everything else must not.
The directory name matters — R015 exempts ``repro/core/`` and
``repro/stream/`` paths, so this fixture lives under a ``repro/serve/``
directory.
"""

import numpy as np

from repro.core.dynamic import DynamicKStarCore


def pokes_the_maintained_state(tracker: DynamicKStarCore):
    tracker._edge_set.add((0, 1))  # plant
    tracker._h[0] = 7  # plant
    tracker._h += 1  # plant
    tracker._pending[(0, 1)] = +1  # plant
    tracker._ov_add.clear()  # plant
    tracker._dirty = False  # plant
    tracker._overlay_edges = 0  # plant
    return tracker


def surgical_reset_kept_for_tests(tracker: DynamicKStarCore):
    # The sanctioned escape hatch: justified inline suppression.
    tracker._h[:] = 0  # repro-lint: disable=R015 (fault-injection scaffolding)
    return tracker


def public_mutators_are_fine(tracker: DynamicKStarCore):
    # The intended shape: the validated batch mutators.
    tracker.insert_edges([(0, 1), (1, 2)])
    tracker.delete_edge(0, 1)
    return tracker.k_star()


def reads_are_fine(tracker: DynamicKStarCore):
    # Reads cannot desynchronize the fixed point; only writes are flagged.
    cores = tracker.core_numbers()
    return int(np.max(cores)), tracker.num_edges


def unrelated_attributes_are_fine(server):
    # Same-named mutators on other objects' public state do not fire.
    server.pending_queries.clear()
    server.history = []
    return server
