"""Fixture: R008 — graph-sized Python loops invisible to the cost model."""

import numpy as np


def uncharged_edge_walk(graph, runtime=None):
    """Graph-sized loops with no charge anywhere in the function."""
    total = 0
    for u, v in graph.edges():  # plant
        total += u + v
    for i in range(graph.num_vertices):  # plant
        total += i
    n = graph.num_vertices
    squares = [i * i for i in range(n)]  # plant
    for j in graph.indices:  # plant
        total += j
    return total + len(squares)


def bulk_charged_walk(graph, runtime=None):
    """Clean: the bulk charge after the loop prices the whole pass."""
    total = 0
    for u, v in graph.edges():
        total += u
    runtime.charge_serial(1.0, label="peel")
    return total


def per_iteration_charged(graph, runtime=None):
    """Clean: each round is metered inside the loop."""
    for _ in range(graph.num_vertices):
        runtime.parfor(graph.num_vertices, None, label="round")
    return 0


def serial_solver_loop(graph):
    """Clean: no runtime in scope — the serial cost model applies."""
    total = 0
    for u, v in graph.edges():
        total += u
    return total


def fixed_size_loop(graph, runtime=None):
    """Clean: the loop bound is not graph-sized."""
    best = 0.0
    for _ in range(10):
        best = max(best, np.float64(graph.num_edges))
    return best


def suppressed_walk(graph, runtime=None):
    """A planted uncharged loop, silenced with an inline disable."""
    acc = 0
    for i in range(graph.num_edges):  # repro-lint: disable=R008
        acc += i
    return acc
