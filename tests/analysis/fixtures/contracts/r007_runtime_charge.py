"""Fixture: R007 — supports_runtime solvers with uncharged return paths."""

from repro.engine.spec import register_solver
from repro.runtime.simruntime import SimRuntime


@register_solver(
    "skips-on-branch",
    kind="uds",
    guarantee="heuristic",
    cost="parallel",
    supports_runtime=True,
)
def skips_on_branch(graph, runtime=None):
    """The small-graph branch returns without charging (the acceptance plant)."""
    rt = runtime or SimRuntime(num_threads=1)
    if graph.num_vertices > 2:
        rt.parfor(graph.num_vertices, None, label="sweep")
        return graph.num_vertices
    return 0  # plant


@register_solver(
    "never-charges",
    kind="uds",
    guarantee="heuristic",
    cost="parallel",
    supports_runtime=True,
)
def never_charges(graph, runtime=None):
    """No charge anywhere: every return is an uncharged path."""
    return graph.num_edges  # plant


@register_solver(
    "no-runtime-param",
    kind="uds",
    guarantee="heuristic",
    cost="parallel",
    supports_runtime=True,
)
def no_runtime_param(graph):  # plant
    """Declares the capability but cannot even receive a runtime."""
    return 0


@register_solver(
    "charges-everywhere",
    kind="uds",
    guarantee="heuristic",
    cost="parallel",
    supports_runtime=True,
)
def charges_everywhere(graph, runtime=None):
    """Clean: both branches charge before returning."""
    rt = runtime or SimRuntime(num_threads=1)
    if graph.num_vertices > 2:
        rt.parfor(graph.num_vertices, None, label="sweep")
        return graph.num_vertices
    rt.charge_serial(1.0, label="tail")
    return 0


@register_solver(
    "guarded-charge",
    kind="uds",
    guarantee="heuristic",
    cost="parallel",
    supports_runtime=True,
)
def guarded_charge(graph, runtime=None):
    """Clean: the engine always passes a runtime, so the guard is taken."""
    if runtime is not None:
        runtime.charge_serial(1.0, label="peel")
    return graph.num_edges


@register_solver(
    "loop-charge",
    kind="uds",
    guarantee="heuristic",
    cost="parallel",
    supports_runtime=True,
)
def loop_charge(graph, runtime=None):
    """Clean: graph-sized loops are assumed to run at least once."""
    rt = runtime or SimRuntime(num_threads=1)
    remaining = graph.num_vertices
    while remaining > 0:
        rt.parfor(remaining, None, label="round")
        remaining -= 1
    return 0


@register_solver(
    "raises-instead",
    kind="uds",
    guarantee="heuristic",
    cost="parallel",
    supports_runtime=True,
)
def raises_instead(graph, runtime=None):
    """Clean: the uncharged path raises, never reaching the engine check."""
    if graph.num_edges == 0:
        raise ValueError("empty graph")
    runtime.charge_serial(1.0, label="peel")
    return graph.num_edges


@register_solver(
    "suppressed-skip",
    kind="uds",
    guarantee="heuristic",
    cost="parallel",
    supports_runtime=True,
)
def suppressed_skip(graph, runtime=None):
    """A planted uncharged return, silenced with an inline disable."""
    return graph.num_edges  # repro-lint: disable=R007
