"""Fixture: file-level suppression silences R007 for the whole module."""

# repro-lint: disable-file=R007

from repro.engine.spec import register_solver


@register_solver(
    "silenced-solver",
    kind="uds",
    guarantee="heuristic",
    cost="parallel",
    supports_runtime=True,
)
def silenced_solver(graph, runtime=None):
    """Would fire R007 on this return, but the file is opted out."""
    return graph.num_edges
