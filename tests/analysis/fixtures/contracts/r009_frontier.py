"""Fixture: R009 — supports_frontier declarations without frontier plumbing."""

from repro.engine.spec import register_solver
from repro.kernels.frontier import frontier_synchronous_sweep


@register_solver(
    "no-plumbing",
    kind="uds",
    guarantee="heuristic",
    cost="parallel",
    supports_frontier=True,
)
def no_plumbing(graph):  # plant
    """Declares the capability but accepts no frontier parameter."""
    return graph.num_edges


@register_solver(
    "ignores-frontier",
    kind="uds",
    guarantee="heuristic",
    cost="parallel",
    supports_frontier=True,
)
def ignores_frontier(graph, frontier=None):  # plant
    """Accepts the parameter, then computes the same thing regardless."""
    return graph.num_vertices


@register_solver(
    "tests-frontier",
    kind="uds",
    guarantee="heuristic",
    cost="parallel",
    supports_frontier=True,
)
def tests_frontier(graph, frontier=None):
    """Clean: the frontier flag selects the sweep strategy."""
    if frontier:
        return frontier_synchronous_sweep(graph)
    return graph.num_vertices


@register_solver(
    "forwards-frontier",
    kind="uds",
    guarantee="heuristic",
    cost="parallel",
    supports_frontier=True,
)
def forwards_frontier(graph, frontier=None):
    """Clean: the frontier is forwarded to a helper that consumes it."""
    return _frontier_core(graph, frontier)


def _frontier_core(graph, frontier):
    if frontier is None:
        return graph.num_vertices
    return frontier_synchronous_sweep(graph)


@register_solver(
    "suppressed-drift",
    kind="uds",
    guarantee="heuristic",
    cost="parallel",
    supports_frontier=True,
)
def suppressed_drift(graph, frontier=None):  # repro-lint: disable=R009
    """A planted capability drift, silenced with an inline disable."""
    return graph.num_edges
