"""Unit coverage for the dataflow layer: CFG, reaching tags, ProjectIndex."""

import ast
import textwrap

from repro.analysis.dataflow import (
    ProjectIndex,
    analyze_tags,
    branch_guards,
    build_cfg,
    env_at,
    runtime_locals,
)


def _func(source: str) -> ast.FunctionDef:
    module = ast.parse(textwrap.dedent(source))
    func = module.body[0]
    assert isinstance(func, ast.FunctionDef)
    return func


def _node_at(cfg, lineno):
    for node in cfg.nodes:
        if node.lineno == lineno:
            return node
    raise AssertionError(f"no CFG node at line {lineno}")


class TestCfg:
    def test_synthetic_nodes_and_return_edge(self):
        cfg = build_cfg(_func("def f():\n    return 1\n"))
        assert cfg.entry.kind == "entry"
        assert cfg.exit.kind == "exit"
        assert cfg.raise_exit.kind == "raise_exit"
        ret = _node_at(cfg, 2)
        assert any(e.dst == cfg.exit.index for e in cfg.successors(ret.index))

    def test_raise_goes_to_raise_exit_not_exit(self):
        cfg = build_cfg(
            _func(
                """
                def f(x):
                    raise ValueError(x)
                """
            )
        )
        raise_node = _node_at(cfg, 3)
        dsts = {e.dst for e in cfg.successors(raise_node.index)}
        assert dsts == {cfg.raise_exit.index}
        # the normal exit is unreachable: nothing falls through
        assert cfg.exit.index not in cfg.reachable(cfg.entry.index)

    def test_if_none_test_annotates_guards(self):
        cfg = build_cfg(
            _func(
                """
                def f(runtime=None):
                    if runtime is not None:
                        runtime.charge_serial(1.0)
                    return 0
                """
            )
        )
        guards = {e.guard for e in cfg.edges if e.guard is not None}
        assert ("not_none", "runtime") in guards
        assert ("is_none", "runtime") in guards

    def test_forbidden_guard_blocks_reachability(self):
        cfg = build_cfg(
            _func(
                """
                def f(runtime=None):
                    if runtime is None:
                        return 0
                    return 1
                """
            )
        )
        reached = cfg.reachable(
            cfg.entry.index,
            forbidden_guards={("is_none", "runtime")},
        )
        assert _node_at(cfg, 4).index not in reached  # `return 0` pruned
        assert _node_at(cfg, 5).index in reached

    def test_loop_zero_trip_edge_is_distinguishable(self):
        cfg = build_cfg(
            _func(
                """
                def f(n):
                    total = 0
                    for i in range(n):
                        total += i
                    return total
                """
            )
        )
        assert any(e.zero_trip for e in cfg.edges)
        # forbidding zero-trip exits forces the walk through the body
        body = _node_at(cfg, 5).index
        ret = _node_at(cfg, 6).index
        reached = cfg.reachable(
            cfg.entry.index, blocked_nodes={body}, allow_zero_trip=False
        )
        assert ret not in reached
        reached = cfg.reachable(cfg.entry.index, blocked_nodes={body})
        assert ret in reached  # zero-trip path skips the blocked body

    def test_while_true_has_no_normal_exit(self):
        cfg = build_cfg(
            _func(
                """
                def f():
                    while True:
                        pass
                """
            )
        )
        assert cfg.exit.index not in cfg.reachable(cfg.entry.index)

    def test_break_exits_loop_normally(self):
        cfg = build_cfg(
            _func(
                """
                def f(n):
                    while True:
                        if n:
                            break
                    return n
                """
            )
        )
        assert cfg.exit.index in cfg.reachable(cfg.entry.index)

    def test_blocked_node_is_entered_but_not_traversed(self):
        cfg = build_cfg(
            _func(
                """
                def f(x):
                    x = x + 1
                    return x
                """
            )
        )
        mid = _node_at(cfg, 3).index
        reached = cfg.reachable(cfg.entry.index, blocked_nodes={mid})
        assert mid in reached
        assert _node_at(cfg, 4).index not in reached


class TestBranchGuards:
    def test_shapes(self):
        def guards(expr_src):
            return branch_guards(ast.parse(expr_src, mode="eval").body)

        assert guards("x is None") == (("is_none", "x"), ("not_none", "x"))
        assert guards("x is not None") == (("not_none", "x"), ("is_none", "x"))
        assert guards("x") == (("truthy", "x"), ("falsy", "x"))
        assert guards("not x") == (("falsy", "x"), ("truthy", "x"))
        assert guards("x > 2") == (None, None)


class TestReachingTags:
    @staticmethod
    def _classify(expr, env):
        if isinstance(expr, ast.Name):
            return env.get(expr.id, frozenset())
        if isinstance(expr, ast.Call):
            callee = expr.func
            if isinstance(callee, ast.Name) and callee.id == "source":
                return frozenset({"hot"})
        return frozenset()

    def test_rebinding_clears_tags_flow_sensitively(self):
        func = _func(
            """
            def f():
                a = source()
                use(a)
                a = fresh()
                use(a)
            """
        )
        cfg = build_cfg(func)
        envs = analyze_tags(cfg, self._classify)
        assert env_at(envs, _node_at(cfg, 4).index)["a"] == frozenset({"hot"})
        assert env_at(envs, _node_at(cfg, 6).index).get("a", frozenset()) == frozenset()

    def test_join_unions_branch_facts(self):
        func = _func(
            """
            def f(flag):
                if flag:
                    a = source()
                else:
                    a = fresh()
                use(a)
            """
        )
        cfg = build_cfg(func)
        envs = analyze_tags(cfg, self._classify)
        assert env_at(envs, _node_at(cfg, 7).index)["a"] == frozenset({"hot"})

    def test_loop_reaches_fixed_point(self):
        func = _func(
            """
            def f(n):
                a = fresh()
                for _ in range(n):
                    a = source()
                use(a)
            """
        )
        cfg = build_cfg(func)
        envs = analyze_tags(cfg, self._classify)
        # may-analysis: after the loop `a` may carry the loop-body tag
        assert "hot" in env_at(envs, _node_at(cfg, 6).index)["a"]


class TestRuntimeLocals:
    def test_optional_and_definite(self):
        func = _func(
            """
            def f(graph, runtime=None):
                rt = runtime or SimRuntime(num_threads=1)
                alias = rt
                other = runtime
                return alias
            """
        )
        optional, definite = runtime_locals(func)
        assert "runtime" in optional and "other" in optional
        assert "rt" in definite and "alias" in definite

    def test_annotation_counts_as_runtime_param(self):
        func = _func(
            """
            def f(graph, sim: "SimRuntime"):
                return sim
            """
        )
        optional, _ = runtime_locals(func)
        assert "sim" in optional


class TestProjectIndex:
    def _index(self, **files):
        sources = [
            (path, ast.parse(textwrap.dedent(src)))
            for path, src in files.items()
        ]
        return ProjectIndex.from_sources(sources)

    def test_registration_literals(self):
        project = self._index(
            **{
                "pkg/solver.py": """
                from repro.engine.spec import register_solver


                @register_solver(
                    "demo",
                    kind="uds",
                    guarantee="exact",
                    cost="parallel",
                    supports_runtime=True,
                )
                def demo(graph, runtime=None):
                    runtime.parfor(1, None)
                    return 0
                """
            }
        )
        (reg,) = project.solvers()
        assert reg.name == "demo"
        assert reg.kind == "uds"
        assert reg.guarantee == "exact"
        assert reg.declared["supports_runtime"] is True
        assert reg.declared["supports_frontier"] is False

    def test_charge_closure_is_transitive(self):
        project = self._index(
            **{
                "pkg/a.py": """
                def outer(graph, rt):
                    inner(graph, rt)
                """,
                "pkg/b.py": """
                def inner(graph, rt):
                    rt.charge_serial(1.0)
                """,
            }
        )
        (outer,) = project.functions_named("outer")
        assert project.function_charges(outer)

    def test_non_charging_builtin_is_not_a_charge(self):
        project = self._index(
            **{
                "pkg/a.py": """
                def f(graph, rt):
                    print(rt)
                    return isinstance(rt, object)
                """
            }
        )
        (fn,) = project.functions_named("f")
        assert not project.function_charges(fn)

    def test_manifest_record_shape(self):
        project = self._index(
            **{
                "pkg/solver.py": """
                @register_solver(
                    "demo",
                    kind="dds",
                    guarantee="2-approx",
                    cost="serial",
                )
                def demo(graph):
                    return 0
                """
            }
        )
        (record,) = project.contracts_manifest()
        assert record["name"] == "demo"
        assert set(record["declared"]) == {
            "runtime", "frontier", "sanitize", "seed", "cluster"
        }
        assert set(record["inferred"]) == set(record["declared"])
        assert record["mismatches"] == []
