"""Race sanitizer: tracked arrays, conflict detection, runtime wiring."""

import numpy as np
import pytest

from repro.analysis.race import (
    RaceSanitizer,
    TrackedArray,
    declare_order_dependent,
    is_order_dependent,
)
from repro.core.hindex import inplace_sweep, synchronous_sweep
from repro.core.pkmc import pkmc
from repro.errors import ParforRaceError
from repro.graph import UndirectedGraph
from repro.runtime import SimRuntime


@pytest.fixture
def fig2():
    return UndirectedGraph.from_edges(
        8,
        [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3),
         (3, 4), (4, 5), (5, 6), (6, 7)],
    )


class TestTrackedArray:
    def test_reads_and_writes_pass_through(self):
        class Recorder:
            def __init__(self):
                self.reads, self.writes = [], []

            def record_read(self, name, cells):
                self.reads.extend(cells.tolist())

            def record_write(self, name, cells):
                self.writes.extend(cells.tolist())

        base = np.arange(5)
        rec = Recorder()
        tracked = TrackedArray(base, "a", rec)
        assert tracked[2] == 2
        tracked[3] = 99
        assert base[3] == 99  # writes land in the caller's array
        assert rec.reads == [2] and rec.writes == [3]

    def test_fancy_index_records_every_cell(self):
        class Recorder:
            def __init__(self):
                self.cells = set()

            def record_read(self, name, cells):
                self.cells.update(cells.tolist())

            def record_write(self, name, cells):
                raise AssertionError("no writes expected")

        rec = Recorder()
        tracked = TrackedArray(np.arange(10), "a", rec)
        tracked[np.array([1, 4, 7])]
        tracked[2:5]
        assert rec.cells == {1, 2, 3, 4, 7}


class TestSanitizerVerdicts:
    def test_write_write_conflict_raises(self):
        sanitizer = RaceSanitizer()
        out = np.zeros(1)

        def body(i, out):
            out[0] = i

        with pytest.raises(ParforRaceError) as excinfo:
            sanitizer.run_loop("racy", 2, body, {"out": out})
        report = excinfo.value.report
        assert report.is_racy
        assert report.conflicts[0].kind == "write-write"
        assert report.conflicts[0].iterations == (0, 1)

    def test_read_write_conflict_detected(self):
        sanitizer = RaceSanitizer(raise_on_race=False)
        data = np.zeros(4)

        def body(i, data):
            if i == 0:
                data[3] = 1.0
            else:
                data[i] = data[3]

        report = sanitizer.run_loop("rw", 3, body, {"data": data})
        assert report.is_racy
        assert any(c.kind == "read-write" for c in report.conflicts)

    def test_disjoint_iterations_are_clean(self):
        sanitizer = RaceSanitizer()
        src, dst = np.arange(8), np.zeros(8)

        def body(i, src, dst):
            dst[i] = src[i] * 2

        report = sanitizer.run_loop("map", 8, body, {"src": src, "dst": dst})
        assert report.clean and not report.is_racy
        assert dst.tolist() == (np.arange(8) * 2).tolist()

    def test_same_iteration_read_write_is_not_a_conflict(self):
        sanitizer = RaceSanitizer()
        data = np.ones(4)

        def body(i, data):
            data[i] = data[i] + 1  # read and write the same cell, same iter

        report = sanitizer.run_loop("rmw", 4, body, {"data": data})
        assert report.clean

    def test_order_dependent_declaration_suppresses_raise(self):
        sanitizer = RaceSanitizer()
        out = np.zeros(1)

        @declare_order_dependent
        def body(i, out):
            out[0] = out[0] + i

        assert is_order_dependent(body)
        report = sanitizer.run_loop("scan", 3, body, {"out": out}, order_dependent=True)
        assert not report.is_racy
        assert report.total_conflicts > 0
        assert "order-dependent" in report.summary()

    def test_conflict_total_exact_with_sample_cap(self):
        sanitizer = RaceSanitizer(raise_on_race=False)
        data = np.zeros(100)

        def body(i, data):
            data[:] = i  # every iteration writes every cell

        report = sanitizer.run_loop("broadcast", 3, body, {"data": data})
        assert report.total_conflicts == 100
        assert len(report.conflicts) <= 64


class TestRuntimeWiring:
    def test_plain_runtime_has_no_sanitizer(self):
        rt = SimRuntime(4)
        assert rt.sanitizer is None and not rt.sanitize

    def test_observe_parfor_without_sanitizer_just_runs(self):
        rt = SimRuntime(4)
        data = np.zeros(4)

        def body(i, data):
            data[i] = i

        assert rt.observe_parfor(4, body, {"data": data}) is None
        assert data.tolist() == [0, 1, 2, 3]
        assert rt.now == 0.0  # observation never charges simulated time

    def test_observe_parfor_picks_up_annotation(self):
        rt = SimRuntime(2, sanitize=True)
        out = np.zeros(1)

        @declare_order_dependent
        def body(i, out):
            out[0] = out[0] + 1

        report = rt.observe_parfor(3, body, {"out": out})
        assert report.order_dependent and not report.is_racy

    def test_observe_parfor_flags_synthetic_race(self):
        rt = SimRuntime(2, sanitize=True)
        out = np.zeros(1)

        def body(i, out):
            out[0] = i

        with pytest.raises(ParforRaceError):
            rt.observe_parfor(2, body, {"out": out})


class TestSweepKernels:
    def test_synchronous_sweep_is_clean_under_sanitizer(self, fig2):
        rt = SimRuntime(4, sanitize=True)
        h = fig2.degrees().astype(np.int64)
        sanitized = synchronous_sweep(fig2, h, runtime=rt)
        assert np.array_equal(sanitized, synchronous_sweep(fig2, h))
        (report,) = rt.sanitizer.reports
        assert report.label == "synchronous_sweep" and report.clean

    def test_inplace_sweep_annotated_not_flagged(self, fig2):
        rt = SimRuntime(4, sanitize=True)
        h = fig2.degrees().astype(np.int64)
        expected = inplace_sweep(fig2, h.copy())
        sanitized = inplace_sweep(fig2, h.copy(), runtime=rt)
        assert np.array_equal(sanitized, expected)
        (report,) = rt.sanitizer.reports
        assert report.label == "inplace_sweep"
        assert report.order_dependent and not report.is_racy
        assert report.total_conflicts > 0  # overlap exists, by design

    def test_pkmc_full_run_under_sanitizer_matches_plain(self, fig2):
        for sweep in ("synchronous", "degree_order"):
            plain = pkmc(fig2, runtime=SimRuntime(4), sweep=sweep)
            rt = SimRuntime(4, sanitize=True)
            sanitized = pkmc(fig2, runtime=rt, sweep=sweep)
            assert sanitized.k_star == plain.k_star
            assert np.array_equal(sanitized.vertices, plain.vertices)
            assert rt.sanitizer.reports  # kernels actually routed through
            assert not rt.sanitizer.racy_reports
