"""Engine mechanics: suppressions, selection, syntax errors, CLI."""

import json

import pytest

from repro.analysis import LintEngine, lint_source
from repro.analysis.cli import main as lint_main
from repro.analysis.rules import DEFAULT_RULES

RACY_SOURCE = "import time\nx = time.time()\n"


class TestSuppressions:
    def test_same_line_disable(self):
        source = "import time\nx = time.time()  # repro-lint: disable=R001\n"
        assert lint_source(source) == []

    def test_same_line_disable_all(self):
        source = "import time\nx = time.time()  # repro-lint: disable=all\n"
        assert lint_source(source) == []

    def test_disable_on_other_line_does_not_leak(self):
        source = (
            "import time\n"
            "y = 1  # repro-lint: disable=R001\n"
            "x = time.time()\n"
        )
        assert [f.rule_id for f in lint_source(source)] == ["R001"]

    def test_file_level_disable(self):
        source = (
            "# repro-lint: disable-file=R001\n"
            "import time\n"
            "x = time.time()\n"
            "y = time.monotonic()\n"
        )
        assert lint_source(source) == []

    def test_disable_wrong_rule_keeps_finding(self):
        source = "import time\nx = time.time()  # repro-lint: disable=R005\n"
        assert [f.rule_id for f in lint_source(source)] == ["R001"]


class TestEngine:
    def test_syntax_error_reported_not_raised(self):
        findings = lint_source("def broken(:\n")
        assert len(findings) == 1
        assert findings[0].rule_id == "E000"
        assert findings[0].severity == "error"

    def test_select_restricts_rules(self):
        engine = LintEngine(select=["R001"])
        assert [r.rule_id for r in engine.rules] == ["R001"]

    def test_ignore_removes_rules(self):
        engine = LintEngine(ignore=["R003", "R004"])
        expected = {r.rule_id for r in DEFAULT_RULES} - {"R003", "R004"}
        assert {r.rule_id for r in engine.rules} == expected

    def test_rule_ids_unique_and_well_formed(self):
        ids = [rule.rule_id for rule in DEFAULT_RULES]
        assert len(set(ids)) == len(ids)
        for rule in DEFAULT_RULES:
            assert rule.rule_id.startswith("R") and len(rule.rule_id) == 4
            assert rule.severity in ("error", "warning")
            assert rule.title and rule.fix_hint

    def test_findings_sorted_by_position(self):
        source = "import time\na = time.monotonic()\nb = time.time()\n"
        findings = lint_source(source)
        assert [f.line for f in findings] == [2, 3]

    def test_lint_paths_walks_directories(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "mod.py").write_text(RACY_SOURCE)
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "junk.py").write_text(RACY_SOURCE)
        findings = LintEngine().lint_paths([tmp_path])
        assert len(findings) == 1
        assert findings[0].rule_id == "R001"


class TestCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text('"""Module."""\nx = 1\n')
        assert lint_main([str(target)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_violation_exits_one(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text(RACY_SOURCE)
        assert lint_main([str(target)]) == 1
        out = capsys.readouterr().out
        assert "R001" in out and "hint:" in out

    def test_warning_needs_strict_to_fail(self, tmp_path):
        target = tmp_path / "warn.py"
        target.write_text("__all__ = ['f']\ndef f():\n    return 1\n")
        assert lint_main([str(target)]) == 0
        assert lint_main([str(target), "--strict"]) == 1

    def test_json_format(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text(RACY_SOURCE)
        assert lint_main([str(target), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["rule"] == "R001"
        assert payload[0]["line"] == 2

    def test_select_filters(self, tmp_path):
        target = tmp_path / "dirty.py"
        target.write_text(RACY_SOURCE)
        assert lint_main([str(target), "--select", "R005"]) == 0

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("R001", "R002", "R003", "R004", "R005"):
            assert rule_id in out

    def test_no_paths_is_usage_error(self, capsys):
        assert lint_main([]) == 2
        assert "no paths" in capsys.readouterr().err

    def test_empty_selection_is_usage_error(self, tmp_path, capsys):
        target = tmp_path / "x.py"
        target.write_text("x = 1\n")
        assert lint_main([str(target), "--select", "R999"]) == 2
