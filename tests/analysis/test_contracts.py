"""Contract rules R007–R012: planted fixtures, suppressions, manifest.

Each fixture module in ``fixtures/contracts/`` plants its violations on
lines ending with a ``# plant`` marker; the parametrized test scans for
the markers and requires the rule to fire on exactly those lines.  Clean
variants in the same module double as false-positive regression tests,
and ``# repro-lint: disable=`` lines prove the suppression machinery
reaches the dataflow rules.
"""

import textwrap
from pathlib import Path

import pytest

import repro
from repro.analysis import LintEngine
from repro.engine.spec import registry_manifest

FIXTURES = Path(__file__).parent / "fixtures" / "contracts"
SRC_ROOT = Path(repro.__file__).parent

RULE_FIXTURES = [
    ("R007", "r007_runtime_charge.py"),
    ("R008", "r008_cost_loops.py"),
    ("R009", "r009_frontier.py"),
    ("R010", "r010_scratch_escape.py"),
    ("R011", "r011_memo_clone.py"),
    # R013 is a pattern rule, not a dataflow rule, but it shares the
    # planted-fixture workflow; it lives under a repro/kernels/
    # directory because the rule is path-scoped.
    ("R012", "r012_report_ownership.py"),
    ("R013", "repro/kernels/r013_backend_dispatch.py"),
    # R014 is likewise path-scoped: it exempts repro/store/shard, so the
    # fixture plants its violations under a repro/distributed/ path.
    ("R014", "repro/distributed/r014_shard_access.py"),
    # R015 exempts repro/core and repro/stream, so the fixture plants
    # its violations under a repro/serve/ path.
    ("R015", "repro/serve/r015_stream_mutation.py"),
]


def planted_lines(path: Path) -> list[int]:
    """Line numbers carrying the ``# plant`` marker."""
    return sorted(
        lineno
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        )
        if line.rstrip().endswith("# plant")
    )


class TestPlantedFixtures:
    @pytest.mark.parametrize(("rule_id", "filename"), RULE_FIXTURES)
    def test_rule_fires_exactly_on_planted_lines(self, rule_id, filename):
        path = FIXTURES / filename
        expected = planted_lines(path)
        assert expected, f"{filename} plants nothing — marker scan is broken"
        findings = LintEngine(select=[rule_id]).lint_file(path)
        assert {f.rule_id for f in findings} <= {rule_id}
        fired = sorted(f.line for f in findings)
        assert fired == expected, (
            f"{rule_id} fired on {fired}, planted {expected}\n"
            + "\n".join(f.format() for f in findings)
        )

    @pytest.mark.parametrize(("rule_id", "filename"), RULE_FIXTURES)
    def test_suppressed_plants_exist(self, rule_id, filename):
        # Every fixture must also exercise the inline-disable path.
        text = (FIXTURES / filename).read_text(encoding="utf-8")
        assert f"# repro-lint: disable={rule_id}" in text

    def test_disable_file_silences_whole_module(self):
        path = FIXTURES / "r007_disable_file.py"
        assert LintEngine(select=["R007"]).lint_file(path) == []
        # ...but the plant is real: stripping the pragma makes it fire.
        stripped = path.read_text(encoding="utf-8").replace(
            "# repro-lint: disable-file=R007", ""
        )
        findings = LintEngine(select=["R007"]).lint_source(stripped)
        assert [f.rule_id for f in findings] == ["R007"]


class TestR007Acceptance:
    """The issue's acceptance plant: a solver skipping charge on one branch."""

    def test_branch_skip_is_reported_by_solver_name(self):
        path = FIXTURES / "r007_runtime_charge.py"
        findings = LintEngine(select=["R007"]).lint_file(path)
        branch = [f for f in findings if "skips-on-branch" in f.message]
        assert len(branch) == 1
        assert "without any runtime charge" in branch[0].message

    def test_interprocedural_helper_resolution(self, tmp_path):
        solver = textwrap.dedent(
            '''
            from repro.engine.spec import register_solver
            from helpers import drain


            @register_solver(
                "forwarding",
                kind="uds",
                guarantee="heuristic",
                cost="parallel",
                supports_runtime=True,
            )
            def forwarding(graph, runtime=None):
                drain(graph, runtime)
                return 0
            '''
        )
        charging = "def drain(graph, rt):\n    rt.charge_serial(1.0)\n"
        pure = "def drain(graph, rt):\n    return graph.num_edges\n"

        clean_dir = tmp_path / "clean"
        dirty_dir = tmp_path / "dirty"
        for directory, helper in ((clean_dir, charging), (dirty_dir, pure)):
            directory.mkdir()
            (directory / "solver.py").write_text(solver)
            (directory / "helpers.py").write_text(helper)

        engine = LintEngine(select=["R007"])
        assert engine.lint_paths([clean_dir]) == []
        findings = engine.lint_paths([dirty_dir])
        assert [f.rule_id for f in findings] == ["R007"]
        assert "forwarding" in findings[0].message

    def test_unknown_callee_is_forgiving(self, tmp_path):
        # A runtime forwarded to an unresolvable callee counts as charged:
        # better to miss a violation than flag dynamic dispatch.
        target = tmp_path / "solver.py"
        target.write_text(
            textwrap.dedent(
                '''
                from repro.engine.spec import register_solver
                from somewhere.dynamic import mystery


                @register_solver(
                    "dynamic",
                    kind="uds",
                    guarantee="heuristic",
                    cost="parallel",
                    supports_runtime=True,
                )
                def dynamic(graph, runtime=None):
                    mystery(graph, runtime)
                    return 0
                '''
            )
        )
        assert LintEngine(select=["R007"]).lint_paths([tmp_path]) == []


class TestContractsManifest:
    """Static decorator literals must match the live registry."""

    def test_manifest_covers_every_registered_solver(self):
        project = LintEngine().build_project([SRC_ROOT])
        static = project.contracts_manifest()
        dynamic = registry_manifest()
        assert len(dynamic) >= 23
        static_keys = [(r["kind"], r["name"]) for r in static]
        dynamic_keys = [(r["kind"], r["name"]) for r in dynamic]
        assert static_keys == dynamic_keys  # same solvers, same sort order

    def test_declared_literals_match_registry_flags(self):
        project = LintEngine().build_project([SRC_ROOT])
        static = {(r["kind"], r["name"]): r for r in project.contracts_manifest()}
        for record in registry_manifest():
            rec = static[(record["kind"], record["name"])]
            assert rec["declared"] == record["capabilities"], record["name"]
            assert rec["guarantee"] == record["guarantee"]
            assert rec["cost"] == record["cost"]
            assert rec["function"].split(".")[-1] == record["function"].split(".")[-1]

    def test_load_bearing_capabilities_have_no_drift(self):
        # R007/R009 gate these two directions; the committed codebase must
        # infer exactly what it declares for runtime and frontier.
        project = LintEngine().build_project([SRC_ROOT])
        for rec in project.contracts_manifest():
            assert rec["inferred"]["runtime"] == rec["declared"]["runtime"], rec
            assert rec["inferred"]["frontier"] == rec["declared"]["frontier"], rec


class TestR013BackendDispatch:
    """R013 is path-scoped: only kernels/ package files are in scope."""

    BYPASS = "import numpy as np\ncounts = np.bincount(rows)\n"

    def test_fires_inside_kernels_path(self):
        findings = LintEngine(select=["R013"]).lint_source(
            self.BYPASS, path="src/repro/kernels/segments.py"
        )
        assert [f.rule_id for f in findings] == ["R013"]
        assert "bypasses the array-backend dispatch" in findings[0].message

    def test_silent_outside_kernels_path(self):
        for path in (
            "src/repro/backends/numpy_backend.py",  # the raw home
            "src/repro/core/pkmc.py",
            "tests/kernels/test_segments.py",  # tests stay fair game
        ):
            assert LintEngine(select=["R013"]).lint_source(
                self.BYPASS, path=path
            ) == [], path

    def test_ufunc_reduction_caught(self):
        source = "import numpy as np\nout = np.add.reduceat(vals, ptr)\n"
        findings = LintEngine(select=["R013"]).lint_source(
            source, path="src/repro/kernels/density.py"
        )
        assert len(findings) == 1
        assert "np.add.reduceat" in findings[0].message

    def test_live_kernels_package_is_clean(self):
        # The real package must satisfy its own rule (the reference
        # lexsort carries a justified inline disable).
        kernels = SRC_ROOT / "kernels"
        assert LintEngine(select=["R013"]).lint_paths([kernels]) == []


class TestR014ShardAccess:
    """R014 exempts repro/store/shard; everywhere else is in scope."""

    BYPASS = 'import numpy as np\ndata = np.load("out/shard_00000.npz")\n'

    def test_fires_outside_shard_store_path(self):
        for path in (
            "src/repro/distributed/sharded.py",
            "src/repro/engine/runner.py",
            "tests/store/test_shard_store.py",
        ):
            findings = LintEngine(select=["R014"]).lint_source(
                self.BYPASS, path=path
            )
            assert [f.rule_id for f in findings] == ["R014"], path
            assert "ShardedGraph facade" in findings[0].message

    def test_silent_inside_shard_store_path(self):
        assert LintEngine(select=["R014"]).lint_source(
            self.BYPASS, path="src/repro/store/shard.py"
        ) == []

    def test_variable_paths_not_flagged(self):
        source = "import numpy as np\ndata = np.load(path)\n"
        assert LintEngine(select=["R014"]).lint_source(
            source, path="src/repro/distributed/sharded.py"
        ) == []

    def test_live_tree_is_clean(self):
        # Nothing outside the shard store opens shard members raw.
        assert LintEngine(select=["R014"]).lint_paths([SRC_ROOT]) == []


class TestR015StreamMutation:
    """R015 exempts repro/core and repro/stream; everywhere else is in scope."""

    POKE = "def hack(tracker):\n    tracker._edge_set.add((0, 1))\n"

    def test_fires_outside_stream_stack(self):
        for path in (
            "src/repro/serve/server.py",
            "src/repro/bench/stream.py",
            "tests/stream/test_session.py",  # tests stay fair game
        ):
            findings = LintEngine(select=["R015"]).lint_source(
                self.POKE, path=path
            )
            assert [f.rule_id for f in findings] == ["R015"], path
            assert "_edge_set" in findings[0].message

    def test_silent_inside_stream_stack(self):
        for path in (
            "src/repro/core/dynamic.py",
            "src/repro/stream/session.py",
        ):
            assert LintEngine(select=["R015"]).lint_source(
                self.POKE, path=path
            ) == [], path

    def test_reads_not_flagged(self):
        source = (
            "def peek(tracker):\n"
            "    return tracker._h.copy(), len(tracker._edge_set)\n"
        )
        assert LintEngine(select=["R015"]).lint_source(
            source, path="src/repro/serve/server.py"
        ) == []

    def test_subscripted_write_flagged(self):
        source = "def hack(tracker):\n    tracker._h[3] = 0\n"
        findings = LintEngine(select=["R015"]).lint_source(
            source, path="src/repro/engine/runner.py"
        )
        assert [f.rule_id for f in findings] == ["R015"]

    def test_live_tree_is_clean(self):
        # Nothing outside repro/core and repro/stream pokes the
        # maintainer's internals.
        assert LintEngine(select=["R015"]).lint_paths([SRC_ROOT]) == []
