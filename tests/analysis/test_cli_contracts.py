"""CLI surface for the contract family: ranges, baselines, manifest."""

import json
from pathlib import Path

import repro
from repro.analysis.baseline import load_baseline, match_baseline, write_baseline
from repro.analysis.cli import _split_ids, main as lint_main
from repro.analysis.rules import DEFAULT_RULES, rule_range

FIXTURES = Path(__file__).parent / "fixtures" / "contracts"
SRC_ROOT = Path(repro.__file__).parent

RACY_SOURCE = "import time\nx = time.time()\n"


class TestRuleRanges:
    def test_split_expands_ranges(self):
        assert _split_ids("R007-R012") == [
            "R007", "R008", "R009", "R010", "R011", "R012"
        ]
        assert _split_ids("R001,R007-R009") == ["R001", "R007", "R008", "R009"]
        assert _split_ids("R007-12") == [
            "R007", "R008", "R009", "R010", "R011", "R012"
        ]
        assert _split_ids(None) is None

    def test_rule_range_is_derived_from_registry(self):
        ids = sorted(rule.rule_id for rule in DEFAULT_RULES)
        assert rule_range() == f"{ids[0]}-{ids[-1]}"
        assert rule_range() == "R001-R015"

    def test_select_range_via_cli(self, tmp_path):
        # R001 violation is invisible when only the contract family runs
        target = tmp_path / "dirty.py"
        target.write_text(RACY_SOURCE)
        assert lint_main([str(target), "--select", "R007-R012"]) == 0
        assert lint_main([str(target), "--select", "R001-R006"]) == 1

    def test_contract_fixture_fails_under_range_select(self, capsys):
        path = FIXTURES / "r007_runtime_charge.py"
        assert lint_main([str(path), "--select", "R007-R012"]) == 1
        assert "R007" in capsys.readouterr().out

    def test_list_rules_covers_contract_family(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("R007", "R008", "R009", "R010", "R011", "R012"):
            assert rule_id in out


class TestJsonOutput:
    def test_records_are_stable_sorted(self, tmp_path, capsys):
        (tmp_path / "b.py").write_text(RACY_SOURCE)
        (tmp_path / "a.py").write_text(
            "import time\ny = time.monotonic()\nx = time.time()\n"
        )
        assert lint_main([str(tmp_path), "--format", "json"]) == 1
        records = json.loads(capsys.readouterr().out)
        keys = [(r["path"], r["line"], r["col"], r["rule"]) for r in records]
        assert keys == sorted(keys)
        assert len(records) == 3

    def test_schema_round_trips_through_baseline(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text(RACY_SOURCE)
        assert lint_main([str(target), "--format", "json"]) == 1
        records = json.loads(capsys.readouterr().out)

        baseline_file = tmp_path / "baseline.json"
        assert lint_main([str(target), "--write-baseline", str(baseline_file)]) == 0
        stored = load_baseline(baseline_file)
        # the baseline stores the exact --format json record schema
        assert stored == records


class TestBaselineFlow:
    def test_write_then_check_suppresses(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text(RACY_SOURCE)
        baseline = tmp_path / "baseline.json"
        assert lint_main([str(target), "--write-baseline", str(baseline)]) == 0
        payload = json.loads(baseline.read_text())
        assert payload["version"] == 1
        assert len(payload["findings"]) == 1

        capsys.readouterr()
        assert lint_main([str(target), "--check-baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "[baseline: 1 suppressed, 0 stale]" in out

    def test_new_finding_still_gates(self, tmp_path):
        target = tmp_path / "dirty.py"
        target.write_text(RACY_SOURCE)
        baseline = tmp_path / "baseline.json"
        assert lint_main([str(target), "--write-baseline", str(baseline)]) == 0
        target.write_text(RACY_SOURCE + "z = time.time_ns()\n")
        assert lint_main([str(target), "--check-baseline", str(baseline)]) == 1

    def test_fixed_finding_reports_stale(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text(RACY_SOURCE)
        baseline = tmp_path / "baseline.json"
        assert lint_main([str(target), "--write-baseline", str(baseline)]) == 0
        target.write_text('"""Clean now."""\nx = 1\n')
        capsys.readouterr()
        assert lint_main([str(target), "--check-baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "[baseline: 0 suppressed, 1 stale]" in out
        assert "ratchet" in out

    def test_malformed_baseline_is_usage_error(self, tmp_path, capsys):
        target = tmp_path / "x.py"
        target.write_text("x = 1\n")
        bad = tmp_path / "baseline.json"
        bad.write_text('{"nope": true}')
        assert lint_main([str(target), "--check-baseline", str(bad)]) == 2
        assert "error" in capsys.readouterr().err

    def test_match_baseline_partitions(self):
        from repro.analysis.engine import Finding

        def finding(msg):
            return Finding("R001", "error", "a.py", 1, 0, msg)

        kept = finding("kept")
        fixed = finding("fixed")
        fresh = finding("fresh")
        records = [kept.as_dict(), fixed.as_dict()]
        new, baselined, stale = match_baseline([kept, fresh], records)
        assert [f.message for f in new] == ["fresh"]
        assert [f.message for f in baselined] == ["kept"]
        assert [r["message"] for r in stale] == ["fixed"]

    def test_committed_baseline_matches_schema(self):
        committed = Path(__file__).parents[2] / "analysis" / "baseline.json"
        records = load_baseline(committed)
        assert records == []  # the codebase carries no baselined debt

    def test_write_baseline_is_deterministic(self, tmp_path):
        target = tmp_path / "dirty.py"
        target.write_text(RACY_SOURCE)
        first = tmp_path / "one.json"
        second = tmp_path / "two.json"
        assert lint_main([str(target), "--write-baseline", str(first)]) == 0
        assert lint_main([str(target), "--write-baseline", str(second)]) == 0
        assert first.read_text() == second.read_text()


class TestManifestCli:
    def test_manifest_to_stdout_skips_linting(self, tmp_path, capsys):
        # even with a violation on disk, '-' only prints the manifest
        (tmp_path / "dirty.py").write_text(RACY_SOURCE)
        assert lint_main([str(tmp_path), "--contracts-manifest", "-"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert records == []  # no solvers registered in this tree

    def test_manifest_file_covers_all_solvers(self, tmp_path):
        destination = tmp_path / "manifest.json"
        assert (
            lint_main(
                [str(SRC_ROOT), "--contracts-manifest", str(destination)]
            )
            == 0
        )
        records = json.loads(destination.read_text())
        assert len(records) >= 23
        for record in records:
            assert set(record) == {
                "kind", "name", "function", "module", "line",
                "guarantee", "cost", "declared", "inferred", "mismatches",
            }


def test_baseline_writer_sorts_findings(tmp_path):
    from repro.analysis.engine import Finding

    unordered = [
        Finding("R005", "error", "b.py", 9, 0, "later"),
        Finding("R001", "error", "a.py", 1, 0, "earlier"),
    ]
    destination = tmp_path / "baseline.json"
    write_baseline(destination, unordered)
    records = load_baseline(destination)
    assert [r["path"] for r in records] == ["a.py", "b.py"]
