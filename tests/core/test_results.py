"""Tests for the result dataclasses."""

import numpy as np

from repro.core import DDSResult, UDSResult


class TestUDSResult:
    def test_counts(self):
        result = UDSResult("X", np.array([1, 2, 3]), density=1.5)
        assert result.num_vertices == 3

    def test_repr_mentions_algorithm_and_core(self):
        result = UDSResult("PKMC", np.array([0]), density=0.5, k_star=3)
        text = repr(result)
        assert "PKMC" in text and "k*=3" in text

    def test_repr_without_core(self):
        result = UDSResult("PFW", np.array([0]), density=0.5)
        assert "k*" not in repr(result)

    def test_extras_default_independent(self):
        a = UDSResult("A", np.array([0]), 0.0)
        b = UDSResult("B", np.array([0]), 0.0)
        a.extras["key"] = 1
        assert "key" not in b.extras


class TestDDSResult:
    def test_sizes(self):
        result = DDSResult("X", np.array([1]), np.array([2, 3]), density=2.0)
        assert result.s_size == 1
        assert result.t_size == 2

    def test_repr_with_pair(self):
        result = DDSResult(
            "PWC", np.array([0]), np.array([1]), density=1.0, x=3, y=2, w_star=6
        )
        text = repr(result)
        assert "[x,y]=[3,2]" in text and "w*=6" in text

    def test_repr_without_pair(self):
        result = DDSResult("PBD", np.array([0]), np.array([1]), density=1.0)
        assert "[x,y]" not in repr(result)
