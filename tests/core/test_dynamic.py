"""Tests for the dynamic k*-core maintainer."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import pkmc
from repro.core.dynamic import DynamicKStarCore
from repro.errors import EmptyGraphError, GraphError
from repro.graph import gnm_random_undirected


def _nx_core_numbers(edges, n):
    g = nx.Graph(edges)
    g.add_nodes_from(range(n))
    return nx.core_number(g)


class TestMutation:
    def test_insert_and_duplicate(self):
        tracker = DynamicKStarCore(4)
        assert tracker.insert_edge(0, 1)
        assert not tracker.insert_edge(1, 0)  # same undirected edge
        assert tracker.num_edges == 1

    def test_delete(self):
        tracker = DynamicKStarCore(4)
        tracker.insert_edge(0, 1)
        assert tracker.delete_edge(0, 1)
        assert not tracker.delete_edge(0, 1)
        assert tracker.num_edges == 0

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            DynamicKStarCore(3).insert_edge(1, 1)

    def test_out_of_range_rejected(self):
        with pytest.raises(GraphError):
            DynamicKStarCore(3).insert_edge(0, 5)

    def test_bulk_insert_counts_new_only(self):
        tracker = DynamicKStarCore(5)
        added = tracker.insert_edges([(0, 1), (1, 2), (1, 0)])
        assert added == 2


class TestCoreMaintenance:
    def test_triangle_build_up(self):
        tracker = DynamicKStarCore(3)
        tracker.insert_edge(0, 1)
        assert tracker.k_star() == 1
        tracker.insert_edge(1, 2)
        assert tracker.k_star() == 1
        tracker.insert_edge(0, 2)
        assert tracker.k_star() == 2

    def test_deletion_drops_core(self):
        tracker = DynamicKStarCore(3)
        tracker.insert_edges([(0, 1), (1, 2), (0, 2)])
        assert tracker.k_star() == 2
        tracker.delete_edge(0, 1)
        assert tracker.k_star() == 1

    def test_matches_static_pkmc(self):
        g = gnm_random_undirected(25, 60, seed=0)
        tracker = DynamicKStarCore(25)
        tracker.insert_edges(g.edges())
        static = pkmc(g)
        result = tracker.densest_subgraph()
        assert result.k_star == static.k_star
        assert result.vertices.tolist() == static.vertices.tolist()

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_incremental_matches_networkx(self, seed):
        rng = np.random.default_rng(seed)
        n = 15
        tracker = DynamicKStarCore(n)
        current: set[tuple[int, int]] = set()
        for _ in range(4):  # four mixed batches
            for _ in range(8):
                u, v = rng.integers(0, n, size=2)
                if u == v:
                    continue
                key = (min(u, v), max(u, v))
                if key in current and rng.random() < 0.5:
                    tracker.delete_edge(int(u), int(v))
                    current.discard(key)
                else:
                    tracker.insert_edge(int(u), int(v))
                    current.add(key)
            if not current:
                continue
            expected = _nx_core_numbers(sorted(current), n)
            got = tracker.core_numbers()
            assert all(got[v] == expected[v] for v in range(n))

    def test_warm_start_never_worse_than_cold(self):
        # A warm start cannot slow convergence down (it is a pointwise
        # tighter upper bound than the degrees) — but, as the module
        # docstring explains, it cannot beat the erosion depth either.
        g = gnm_random_undirected(400, 1600, seed=2)
        tracker = DynamicKStarCore(400)
        tracker.insert_edges(g.edges())
        tracker.core_numbers()
        sweeps_initial = tracker.total_sweeps
        rng = np.random.default_rng(3)
        while True:
            u, v = rng.integers(0, 400, size=2)
            if u != v and tracker.insert_edge(int(u), int(v)):
                break
        tracker.core_numbers()
        assert tracker.total_sweeps - sweeps_initial <= sweeps_initial + 1

    def test_batching_amortises_refreshes(self):
        # In rebuild mode (the bench baseline) batching is the only
        # amortization: 60 mutations + 1 query = 1 refresh, not 60.
        # Incremental mode spreads the same work over per-update local
        # sweeps instead, so the claim is pinned on incremental=False.
        g = gnm_random_undirected(300, 900, seed=4)
        edges = g.edges()
        eager = DynamicKStarCore(300, incremental=False)
        eager.insert_edges(edges[:840])
        eager.core_numbers()
        for u, v in edges[840:]:
            eager.insert_edge(int(u), int(v))
            eager.core_numbers()          # query after every edge
        lazy = DynamicKStarCore(300, incremental=False)
        lazy.insert_edges(edges[:840])
        lazy.core_numbers()
        lazy.insert_edges(edges[840:])    # one batch, one refresh
        lazy.core_numbers()
        assert np.array_equal(lazy.core_numbers(), eager.core_numbers())
        assert lazy.total_sweeps < eager.total_sweeps / 3
        # The incremental path lands on the same cores either way.
        incr = DynamicKStarCore(300)
        incr.insert_edges(edges[:840])
        incr.core_numbers()
        incr.insert_edges(edges[840:])
        assert np.array_equal(incr.core_numbers(), eager.core_numbers())

    def test_empty_densest_rejected(self):
        tracker = DynamicKStarCore(3)
        with pytest.raises(EmptyGraphError):
            tracker.densest_subgraph()

    def test_lazy_refresh(self):
        tracker = DynamicKStarCore(4)
        tracker.insert_edge(0, 1)
        sweeps_before = tracker.total_sweeps
        tracker.insert_edge(1, 2)
        tracker.insert_edge(2, 3)
        # No queries yet: no sweeps spent.
        assert tracker.total_sweeps == sweeps_before
        tracker.k_star()
        assert tracker.total_sweeps > sweeps_before

class TestBatchValidation:
    """ISSUE 10 satellites: batch mutators and their atomicity contract."""

    def test_delete_edges_counts_present_only(self):
        tracker = DynamicKStarCore(5)
        tracker.insert_edges([(0, 1), (1, 2), (2, 3)])
        removed = tracker.delete_edges([(1, 0), (2, 3), (3, 4)])
        assert removed == 2
        assert tracker.num_edges == 1

    def test_stream_mutation_error_is_a_value_error(self):
        # Callers treating bad payloads as plain bad arguments and
        # callers catching the graph-error hierarchy both work.
        tracker = DynamicKStarCore(3)
        with pytest.raises(ValueError):
            tracker.insert_edges([(0, 0)])
        with pytest.raises(GraphError):
            tracker.insert_edges([(0, 7)])

    def test_error_messages_point_at_the_offender(self):
        tracker = DynamicKStarCore(3)
        with pytest.raises(GraphError, match=r"\(1, 1\).*self-loop"):
            tracker.insert_edge(1, 1)
        with pytest.raises(GraphError, match=r"\(0, 5\).*out of range"):
            tracker.delete_edge(0, 5)

    def test_poisoned_batch_applies_nothing(self):
        tracker = DynamicKStarCore(4)
        tracker.insert_edges([(0, 1)])
        fingerprint = tracker.graph().fingerprint()
        with pytest.raises(ValueError):
            tracker.insert_edges([(1, 2), (3, 3)])
        with pytest.raises(ValueError):
            tracker.delete_edges([(0, 1), (0, 9)])
        assert tracker.num_edges == 1
        assert tracker.graph().fingerprint() == fingerprint

    def test_delete_nonexistent_is_a_counted_noop(self):
        tracker = DynamicKStarCore(4)
        tracker.insert_edges([(0, 1), (1, 2)])
        tracker.k_star()
        sweeps = tracker.total_sweeps
        assert tracker.delete_edges([(0, 2), (2, 3)]) == 0
        # nothing changed: the next query spends no further sweeps
        tracker.k_star()
        assert tracker.total_sweeps == sweeps

    def test_empty_batch_does_not_bump_the_fingerprint(self):
        tracker = DynamicKStarCore(4)
        tracker.insert_edges([(0, 1), (1, 2)])
        fingerprint = tracker.graph().fingerprint()
        stats = dict(tracker.stats())
        assert tracker.insert_edges([]) == 0
        assert tracker.delete_edges([]) == 0
        assert tracker.insert_edges([(0, 1)]) == 0  # duplicate: also a no-op
        assert tracker.graph().fingerprint() == fingerprint
        assert tracker.stats() == stats
