"""Tests for PWC (Algorithm 4), incl. the paper's Examples 3-4 behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    derive_cn_pair_collapse,
    derive_cn_pair_divisor,
    pwc,
    wstar_subgraph,
)
from repro.errors import EmptyGraphError
from repro.graph import DirectedGraph, gnm_random_directed, planted_st_subgraph
from repro.runtime import SimRuntime


class TestPaperFig4:
    def test_wstar_and_cn_pair(self, fig4_graph):
        result = pwc(fig4_graph)
        assert result.w_star == 12
        assert (result.x, result.y) == (4, 3)

    def test_core_sets(self, fig4_graph):
        result = pwc(fig4_graph)
        assert result.s.tolist() == [0, 1, 2]
        assert result.t.tolist() == [4, 5, 6, 7]
        assert result.density == pytest.approx(12 / np.sqrt(12))

    def test_collapse_extraction_used(self, fig4_graph):
        result = pwc(fig4_graph, extraction="collapse")
        assert not result.extras["extraction_fallback"]

    def test_divisor_extraction_same_answer(self, fig4_graph):
        a = pwc(fig4_graph, extraction="collapse")
        b = pwc(fig4_graph, extraction="divisor")
        assert (a.x, a.y) == (b.x, b.y)

    def test_fig3_theorem2(self, fig3_graph):
        # Theorem 2: w* = x* . y*; here w* = 6 with cn-pair [3, 2].
        result = pwc(fig3_graph)
        assert result.w_star == 6
        assert result.x * result.y == 6


class TestCnPairDerivation:
    def test_divisor_raises_on_impossible(self, fig4_graph):
        wstar = wstar_subgraph(fig4_graph)
        x, y, core = derive_cn_pair_divisor(fig4_graph, wstar)
        assert (x, y) == (4, 3)
        assert core.exists

    def test_collapse_on_fig4(self, fig4_graph):
        wstar = wstar_subgraph(fig4_graph)
        pair = derive_cn_pair_collapse(fig4_graph, wstar)
        assert pair == (4, 3)


class TestCorrectness:
    def test_empty_graph_rejected(self):
        with pytest.raises(EmptyGraphError):
            pwc(DirectedGraph.empty(4))

    def test_single_edge(self):
        result = pwc(DirectedGraph.from_edges(2, [(0, 1)]))
        assert (result.x, result.y) == (1, 1)
        assert result.density == pytest.approx(1.0)

    def test_planted_block_recovered(self):
        graph, s, t = planted_st_subgraph(
            1500, 5000, s_size=14, t_size=20, block_probability=1.0, seed=6
        )
        result = pwc(graph)
        assert set(s.tolist()) <= set(result.s.tolist())
        assert set(t.tolist()) <= set(result.t.tolist())

    def test_theorem2_on_random_graphs(self, small_random_directed):
        # w* must equal the maximum x*y over all existing [x, y]-cores.
        from repro.core import max_y_for_x

        for seed in range(8):
            d = small_random_directed(seed, n=9, m=26)
            if d.num_edges == 0:
                continue
            result = pwc(d)
            best = max(
                x * max_y_for_x(d, x)[0] for x in range(1, d.num_edges + 1)
            )
            assert result.w_star >= best
            assert result.x * result.y == best

    def test_bipartite_star(self):
        # One hub with 5 in-edges: the DDS is the star, [1, 5]-core.
        edges = [(i, 5) for i in range(5)]
        result = pwc(DirectedGraph.from_edges(6, edges))
        assert result.w_star == 5
        assert (result.x, result.y) == (1, 5)
        assert result.density == pytest.approx(5 / np.sqrt(5))

    def test_extraction_modes_agree_on_product(self, small_random_directed):
        for seed in range(10):
            d = small_random_directed(seed, n=10, m=30)
            if d.num_edges == 0:
                continue
            a = pwc(d, extraction="collapse")
            b = pwc(d, extraction="divisor")
            assert a.x * a.y == b.x * b.y
            assert a.x * a.y <= a.w_star

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_core_constraints_hold(self, seed):
        d = gnm_random_directed(10, 30, seed=seed)
        if d.num_edges == 0:
            return
        result = pwc(d)
        block = d.st_induced_subgraph(result.s, result.t)
        dout = block.out_degrees()
        din = block.in_degrees()
        assert all(dout[v] >= result.x for v in result.s)
        assert all(din[v] >= result.y for v in result.t)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_start_at_dmax_is_transparent(self, seed):
        d = gnm_random_directed(10, 30, seed=seed)
        if d.num_edges == 0:
            return
        fast = pwc(d, start_at_dmax=True)
        slow = pwc(d, start_at_dmax=False)
        assert fast.w_star == slow.w_star
        assert fast.x * fast.y == slow.x * slow.y


class TestAccounting:
    def test_table7_sizes_monotone(self, fig4_graph):
        result = pwc(fig4_graph)
        assert result.extras["size_first"] >= result.extras["size_wstar"]
        assert result.extras["size_wstar"] >= result.extras["size_dds"]

    def test_simulated_time_decreases_with_threads(self):
        graph, _, _ = planted_st_subgraph(
            2000, 9000, s_size=15, t_size=20, seed=7
        )
        t1 = pwc(graph, runtime=SimRuntime(1)).simulated_seconds
        t16 = pwc(graph, runtime=SimRuntime(16)).simulated_seconds
        assert t16 < t1


class TestTheorem2Gap:
    """Regression tests for the discovered gap in the paper's Theorem 2.

    w* upper-bounds x* . y* but equality can fail: mixed out/in-degree
    combinations can keep every edge weight >= w* without any uniform
    [x, y]-core of product w*.  PWC must survive this by descending.
    """

    @pytest.fixture
    def counterexample(self):
        # gnm seed found by hypothesis: w* = 8, maximum cn-pair [2, 3].
        return gnm_random_directed(9, 26, seed=13838)

    def test_wstar_exceeds_max_product(self, counterexample):
        from repro.core import max_y_for_x

        wstar = wstar_subgraph(counterexample)
        best = max(
            x * max_y_for_x(counterexample, x)[0]
            for x in range(1, counterexample.num_edges + 1)
        )
        assert wstar.w_star == 8
        assert best == 6
        assert wstar.w_star > best  # Theorem 2 equality fails here

    def test_pwc_still_returns_max_cn_pair(self, counterexample):
        result = pwc(counterexample)
        assert (result.x, result.y) == (2, 3)
        assert result.extras["theorem2_gap"] == 2

    def test_both_extractions_descend_correctly(self, counterexample):
        a = pwc(counterexample, extraction="collapse")
        b = pwc(counterexample, extraction="divisor")
        assert (a.x * a.y) == (b.x * b.y) == 6

    def test_two_approximation_still_holds(self, counterexample):
        from repro.algorithms.directed import brute_force_dds

        result = pwc(counterexample)
        exact = brute_force_dds(counterexample)
        assert result.density * 2 + 1e-9 >= exact.density

    def test_gap_zero_on_paper_examples(self, fig3_graph, fig4_graph):
        assert pwc(fig3_graph).extras["theorem2_gap"] == 0
        assert pwc(fig4_graph).extras["theorem2_gap"] == 0
