"""Tests for w-induced subgraphs (Algorithm 3), incl. the paper's Table 3."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    edge_weights,
    winduced_decomposition,
    winduced_subgraph,
    wstar_subgraph,
)
from repro.errors import EmptyGraphError
from repro.graph import DirectedGraph, gnm_random_directed
from tests.conftest import FIG3_INDUCE_NUMBERS


class TestEdgeWeights:
    def test_fig3_initial_weights(self, fig3_graph):
        # Paper Example 2: w(u1, v3) = d+(u1) * d-(v3) = 3 * 3 = 9.
        weights = edge_weights(fig3_graph)
        edges = fig3_graph.edges()
        lookup = {tuple(e): int(w) for e, w in zip(edges.tolist(), weights)}
        assert lookup[(0, 6)] == 9
        assert lookup[(3, 7)] == 3   # (u4, v4): 1 * 3
        assert lookup[(1, 8)] == 5   # (u2, v5): 5 * 1

    def test_masked_weights(self, fig3_graph):
        mask = np.zeros(fig3_graph.num_edges, dtype=bool)
        mask[:1] = True
        weights = edge_weights(fig3_graph, edge_mask=mask)
        assert np.count_nonzero(weights) == 1
        assert weights[mask][0] == 1  # lone edge: degrees 1 * 1

    def test_weights_vs_definition(self, small_random_directed):
        d = small_random_directed(0, n=10, m=30)
        weights = edge_weights(d)
        dout, din = d.out_degrees(), d.in_degrees()
        for e, (u, v) in enumerate(d.iter_edges()):
            assert weights[e] == dout[u] * din[v]


class TestDecomposition:
    def test_paper_table3(self, fig3_graph):
        induce, w_star = winduced_decomposition(fig3_graph)
        assert w_star == 6
        lookup = {
            tuple(e): int(w)
            for e, w in zip(fig3_graph.edges().tolist(), induce)
        }
        assert lookup == FIG3_INDUCE_NUMBERS

    def test_empty_graph(self):
        induce, w_star = winduced_decomposition(DirectedGraph.empty(3))
        assert induce.size == 0
        assert w_star == 0

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_induce_number_definition(self, seed):
        # induce(e) must be the largest w whose w-induced subgraph keeps e.
        d = gnm_random_directed(8, 20, seed=seed)
        if d.num_edges == 0:
            return
        induce, w_star = winduced_decomposition(d)
        candidate_ws = sorted(set(induce.tolist()))
        for w in candidate_ws:
            members = winduced_subgraph(d, w)
            assert np.array_equal(members, induce >= w)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_wstar_is_max_induce_number(self, seed):
        d = gnm_random_directed(9, 24, seed=seed)
        if d.num_edges == 0:
            return
        induce, w_star = winduced_decomposition(d)
        assert w_star == induce.max()


class TestWInducedSubgraph:
    def test_fig3_six_induced(self, fig3_graph):
        mask = winduced_subgraph(fig3_graph, 6)
        kept = {tuple(e) for e in fig3_graph.edges()[mask].tolist()}
        expected = {(0, 4), (0, 5), (0, 6), (1, 4), (1, 5), (1, 6)}
        assert kept == expected

    def test_weight_invariant(self, fig3_graph):
        mask = winduced_subgraph(fig3_graph, 6)
        weights = edge_weights(fig3_graph, edge_mask=mask)
        assert weights[mask].min() >= 6

    def test_above_wstar_empty(self, fig3_graph):
        mask = winduced_subgraph(fig3_graph, 7)
        assert not mask.any()

    def test_w_zero_keeps_everything(self, fig3_graph):
        assert winduced_subgraph(fig3_graph, 0).all()

    @given(st.integers(0, 2**32 - 1), st.integers(1, 12), st.integers(1, 12))
    @settings(max_examples=30, deadline=None)
    def test_nested_property(self, seed, w_small, w_large):
        # Proposition 3: a larger threshold yields a subset.
        if w_small > w_large:
            w_small, w_large = w_large, w_small
        d = gnm_random_directed(10, 28, seed=seed)
        if d.num_edges == 0:
            return
        big = winduced_subgraph(d, w_small)
        small = winduced_subgraph(d, w_large)
        assert np.all(~small | big)  # small implies big


class TestWStarSubgraph:
    def test_fig3(self, fig3_graph):
        result = wstar_subgraph(fig3_graph)
        assert result.w_star == 6
        kept = {tuple(e) for e in fig3_graph.edges()[result.edge_mask].tolist()}
        assert kept == {(0, 4), (0, 5), (0, 6), (1, 4), (1, 5), (1, 6)}

    def test_empty_rejected(self):
        with pytest.raises(EmptyGraphError):
            wstar_subgraph(DirectedGraph.empty(2))

    def test_sizes_recorded(self, fig3_graph):
        result = wstar_subgraph(fig3_graph)
        assert result.size_wstar == 6
        assert result.size_after_prune >= result.size_wstar

    def test_dmax_pruning_changes_nothing(self, small_random_directed):
        # The Remark's w >= d_max shortcut must not affect the answer.
        for seed in range(8):
            d = small_random_directed(seed, n=10, m=30)
            if d.num_edges == 0:
                continue
            fast = wstar_subgraph(d, start_at_dmax=True)
            slow = wstar_subgraph(d, start_at_dmax=False)
            assert fast.w_star == slow.w_star
            assert np.array_equal(fast.edge_mask, slow.edge_mask)

    def test_wstar_at_least_dmax(self, small_random_directed):
        # The Remark itself: w* >= d_max.
        for seed in range(8):
            d = small_random_directed(seed, n=10, m=30)
            if d.num_edges == 0:
                continue
            result = wstar_subgraph(d)
            assert result.w_star >= d.max_degree()

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_agrees_with_decomposition(self, seed):
        d = gnm_random_directed(9, 26, seed=seed)
        if d.num_edges == 0:
            return
        fast = wstar_subgraph(d)
        induce, w_star = winduced_decomposition(d)
        assert fast.w_star == w_star
        assert np.array_equal(fast.edge_mask, induce == w_star)
