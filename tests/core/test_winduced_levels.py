"""Tests for Algorithm 3's level structure (the Exp-6 size trace)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import edge_weights, wstar_subgraph
from repro.graph import gnm_random_directed


class TestLevelSizes:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_levels_strictly_increasing_w(self, seed):
        d = gnm_random_directed(12, 36, seed=seed)
        if d.num_edges == 0:
            return
        result = wstar_subgraph(d, start_at_dmax=False)
        levels = [w for w, _ in result.level_sizes]
        assert levels == sorted(set(levels))
        assert levels[-1] == result.w_star

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_level_sizes_non_increasing(self, seed):
        d = gnm_random_directed(12, 36, seed=seed)
        if d.num_edges == 0:
            return
        result = wstar_subgraph(d, start_at_dmax=False)
        sizes = [size for _, size in result.level_sizes]
        assert sizes == sorted(sizes, reverse=True)
        assert sizes[-1] == result.size_wstar

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_first_level_is_whole_graph_without_prune(self, seed):
        d = gnm_random_directed(12, 36, seed=seed)
        if d.num_edges == 0:
            return
        result = wstar_subgraph(d, start_at_dmax=False)
        assert result.level_sizes[0][1] == d.num_edges
        assert result.size_after_prune == d.num_edges

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_snapshot_weights_at_least_wstar(self, seed):
        d = gnm_random_directed(12, 36, seed=seed)
        if d.num_edges == 0:
            return
        result = wstar_subgraph(d)
        weights = edge_weights(d, edge_mask=result.edge_mask)
        assert weights[result.edge_mask].min() >= result.w_star

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_prune_skips_low_levels_only(self, seed):
        # With the d_max shortcut the visited levels are a suffix of the
        # unpruned ones (same final level, same answer).
        d = gnm_random_directed(12, 36, seed=seed)
        if d.num_edges == 0:
            return
        pruned = wstar_subgraph(d, start_at_dmax=True)
        full = wstar_subgraph(d, start_at_dmax=False)
        pruned_levels = [w for w, _ in pruned.level_sizes]
        full_levels = [w for w, _ in full.level_sizes]
        assert pruned_levels == [w for w in full_levels if w >= pruned_levels[0]]
        assert len(pruned.level_sizes) <= len(full.level_sizes)
