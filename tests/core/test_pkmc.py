"""Tests for PKMC (Algorithm 2), including the paper's Example 1."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import pkmc
from repro.errors import EmptyGraphError
from repro.graph import (
    UndirectedGraph,
    chung_lu_undirected,
    gnm_random_undirected,
    planted_dense_subgraph,
)
from repro.runtime import SimRuntime


class TestPaperExample1:
    def test_kstar_core_found(self, fig2_graph):
        result = pkmc(fig2_graph)
        assert result.k_star == 3
        assert result.vertices.tolist() == [0, 1, 2, 3]
        assert result.density == pytest.approx(6 / 4)

    def test_stops_after_two_iterations(self, fig2_graph):
        result = pkmc(fig2_graph)
        assert result.iterations == 2
        assert result.extras["early_stop_fired"]

    def test_history_matches_walkthrough(self, fig2_graph):
        # (h_max, count): initial (4, 1), then (3, 4) twice -> stop.
        result = pkmc(fig2_graph)
        assert result.extras["history"] == [(4, 1), (3, 4), (3, 4)]

    def test_local_without_early_stop_needs_four(self, fig2_graph):
        result = pkmc(fig2_graph, early_stop=False)
        assert result.iterations == 4
        assert result.k_star == 3
        assert result.vertices.tolist() == [0, 1, 2, 3]


class TestCorrectness:
    def test_matches_networkx_max_core(self, small_random_undirected):
        for seed in range(10):
            g = small_random_undirected(seed, n=20, m=50)
            if g.num_edges == 0:
                continue
            result = pkmc(g)
            nx_graph = nx.Graph(list(map(tuple, g.edges().tolist())))
            nx_graph.add_nodes_from(range(g.num_vertices))
            core_numbers = nx.core_number(nx_graph)
            k_star = max(core_numbers.values())
            expected = sorted(v for v, c in core_numbers.items() if c == k_star)
            assert result.k_star == k_star
            assert result.vertices.tolist() == expected

    def test_clique_is_its_own_core(self):
        g = UndirectedGraph.from_edges(
            5, [(i, j) for i in range(5) for j in range(i + 1, 5)]
        )
        result = pkmc(g)
        assert result.k_star == 4
        assert result.num_vertices == 5
        assert result.iterations == 1  # stable immediately

    def test_empty_graph_rejected(self):
        with pytest.raises(EmptyGraphError):
            pkmc(UndirectedGraph.empty(3))

    def test_single_edge(self):
        result = pkmc(UndirectedGraph.from_edges(2, [(0, 1)]))
        assert result.k_star == 1
        assert result.density == pytest.approx(0.5)

    def test_planted_clique_recovered(self):
        graph, core = planted_dense_subgraph(
            800, 3000, core_size=25, core_probability=1.0, seed=3
        )
        result = pkmc(graph)
        assert set(core.tolist()) <= set(result.vertices.tolist())

    def test_degree_order_sweep_same_answer(self, small_random_undirected):
        for seed in range(5):
            g = small_random_undirected(seed, n=18, m=40)
            if g.num_edges == 0:
                continue
            sync = pkmc(g, sweep="synchronous")
            ordered = pkmc(g, sweep="degree_order")
            assert sync.k_star == ordered.k_star
            assert sync.vertices.tolist() == ordered.vertices.tolist()

    def test_disabling_guard_still_correct_on_samples(self):
        # Proposition-1 guard off: Theorem 1 alone is still sound.
        for seed in range(8):
            g = gnm_random_undirected(16, 36, seed=seed)
            if g.num_edges == 0:
                continue
            with_guard = pkmc(g, proposition1_guard=True)
            without_guard = pkmc(g, proposition1_guard=False)
            assert with_guard.k_star == without_guard.k_star

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_core_property_holds(self, seed):
        g = gnm_random_undirected(18, 40, seed=seed)
        if g.num_edges == 0:
            return
        result = pkmc(g)
        sub, _ = g.induced_subgraph(result.vertices)
        assert sub.degrees().min() >= result.k_star

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_relabel_invariance(self, seed):
        g = gnm_random_undirected(15, 32, seed=seed)
        if g.num_edges == 0:
            return
        rng = np.random.default_rng(seed)
        perm = rng.permutation(g.num_vertices)
        relabeled = g.relabeled(perm)
        a = pkmc(g)
        b = pkmc(relabeled)
        assert a.k_star == b.k_star
        assert sorted(perm[a.vertices].tolist()) == b.vertices.tolist()


class TestEfficiencyShape:
    def test_fewer_iterations_than_local(self):
        # The paper's central claim (Table 6): the early stop prunes the
        # long convergence tail.
        graph, _ = planted_dense_subgraph(
            2000, 9000, core_size=30, core_probability=1.0, seed=4
        )
        fast = pkmc(graph)
        slow = pkmc(graph, early_stop=False)
        assert fast.iterations <= slow.iterations
        assert fast.k_star == slow.k_star

    def test_simulated_time_decreases_with_threads(self):
        g = chung_lu_undirected(3000, 15000, seed=5)
        t1 = pkmc(g, runtime=SimRuntime(1)).simulated_seconds
        t16 = pkmc(g, runtime=SimRuntime(16)).simulated_seconds
        assert t16 < t1
        assert t1 / t16 > 4  # decent parallel efficiency at p=16

    def test_max_iterations_respected(self, fig2_graph):
        result = pkmc(fig2_graph, early_stop=False, max_iterations=1)
        assert result.iterations == 1


class TestCoreDensityHelper:
    def test_empty_vertex_set_short_circuits(self, fig2_graph, monkeypatch):
        import importlib

        pkmc_module = importlib.import_module("repro.core.pkmc")

        # Regression: the empty case must return before the O(m) edge scan,
        # not allocate the membership mask and scan anyway.
        def forbid_repeat(*args, **kwargs):
            raise AssertionError("edge scan ran for an empty vertex set")

        monkeypatch.setattr(pkmc_module.np, "repeat", forbid_repeat)
        density = pkmc_module._core_density(
            fig2_graph, np.empty(0, dtype=np.int64)
        )
        assert density == 0.0

    def test_nonempty_density_unchanged(self, fig2_graph):
        from repro.core.pkmc import _core_density

        # The K4 {0,1,2,3} has 6 internal edges over 4 vertices.
        k4 = np.array([0, 1, 2, 3])
        assert _core_density(fig2_graph, k4) == pytest.approx(1.5)
