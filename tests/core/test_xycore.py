"""Tests for the [x, y]-core peeling primitives (Definition 7)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import max_y_for_x, xy_core
from repro.graph import DirectedGraph, gnm_random_directed


def _violates(graph, core):
    """Return True if any core member breaks its degree constraint."""
    sub = graph.subgraph_from_edge_mask(core.edge_mask)
    dout = sub.out_degrees()
    din = sub.in_degrees()
    s_bad = any(dout[v] < core.x for v in core.s)
    t_bad = any(din[v] < core.y for v in core.t)
    return s_bad or t_bad


class TestXYCore:
    def test_fig4_43_core(self, fig4_graph):
        core = xy_core(fig4_graph, 4, 3)
        assert core.exists
        assert core.s.tolist() == [0, 1, 2]
        assert core.t.tolist() == [4, 5, 6, 7]
        assert core.num_edges == 12
        assert core.density() == pytest.approx(12 / np.sqrt(3 * 4))

    def test_fig4_62_core_missing(self, fig4_graph):
        # Paper Example 4: the weight-12 edges with pair [6, 2] are not a core.
        assert not xy_core(fig4_graph, 6, 2).exists

    def test_11_core_is_whole_active_graph(self, fig3_graph):
        core = xy_core(fig3_graph, 1, 1)
        assert core.exists
        assert core.num_edges == fig3_graph.num_edges

    def test_invalid_thresholds(self, fig3_graph):
        with pytest.raises(ValueError):
            xy_core(fig3_graph, 0, 1)

    def test_respects_edge_mask(self, fig4_graph):
        empty_mask = np.zeros(fig4_graph.num_edges, dtype=bool)
        core = xy_core(fig4_graph, 1, 1, edge_mask=empty_mask)
        assert not core.exists

    def test_degree_constraints_hold(self, small_random_directed):
        for seed in range(10):
            d = small_random_directed(seed, n=10, m=35)
            if d.num_edges == 0:
                continue
            core = xy_core(d, 2, 2)
            if core.exists:
                assert not _violates(d, core)

    @given(st.integers(0, 2**32 - 1), st.integers(1, 4), st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_maximality_against_brute_force(self, seed, x, y):
        # Peeling must find the union of all (S, T) pairs satisfying the
        # constraints — checked against subset enumeration on tiny graphs.
        d = gnm_random_directed(6, 16, seed=seed)
        if d.num_edges == 0:
            return
        core = xy_core(d, x, y)
        n = d.num_vertices
        best_edges = -1
        found = False
        for s_mask in range(1, 1 << n):
            s_members = np.flatnonzero((s_mask >> np.arange(n)) & 1)
            for t_mask in range(1, 1 << n):
                t_members = np.flatnonzero((t_mask >> np.arange(n)) & 1)
                block = d.st_induced_subgraph(s_members, t_members)
                dout = block.out_degrees()
                din = block.in_degrees()
                if all(dout[v] >= x for v in s_members) and all(
                    din[v] >= y for v in t_members
                ):
                    found = True
                    best_edges = max(best_edges, block.num_edges)
        assert core.exists == found
        if found:
            # The maximal core contains every feasible pair.
            assert core.num_edges >= best_edges


class TestMaxYForX:
    def test_fig4(self, fig4_graph):
        y, _ = max_y_for_x(fig4_graph, 4)
        assert y == 3

    def test_no_core_returns_zero(self, fig3_graph):
        y, _ = max_y_for_x(fig3_graph, 99)
        assert y == 0

    def test_monotone_in_x(self, small_random_directed):
        for seed in range(6):
            d = small_random_directed(seed, n=10, m=30)
            if d.num_edges == 0:
                continue
            ys = [max_y_for_x(d, x)[0] for x in range(1, 6)]
            assert ys == sorted(ys, reverse=True)

    @given(st.integers(0, 2**32 - 1), st.integers(1, 5))
    @settings(max_examples=25, deadline=None)
    def test_agrees_with_existence_checks(self, seed, x):
        d = gnm_random_directed(9, 28, seed=seed)
        if d.num_edges == 0:
            return
        y, _ = max_y_for_x(d, x)
        if y == 0:
            assert not xy_core(d, x, 1).exists
        else:
            assert xy_core(d, x, y).exists
            assert not xy_core(d, x, y + 1).exists
