"""Unit and property tests for the h-index kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    degree_descending_order,
    h_index,
    inplace_sweep,
    synchronous_sweep,
)
from repro.graph import UndirectedGraph, gnm_random_undirected


class TestScalarHIndex:
    def test_known_values(self):
        assert h_index(np.array([4, 3, 3, 1])) == 3
        assert h_index(np.array([1, 1, 1])) == 1
        assert h_index(np.array([5])) == 1
        assert h_index(np.array([0, 0])) == 0

    def test_empty(self):
        assert h_index(np.array([], dtype=np.int64)) == 0

    def test_hirsch_paper_example(self):
        # Citations [10, 8, 5, 4, 3] -> h = 4.
        assert h_index(np.array([10, 8, 5, 4, 3])) == 4

    @given(st.lists(st.integers(0, 50), max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_definition(self, values):
        arr = np.array(values, dtype=np.int64)
        h = h_index(arr)
        assert (arr >= h).sum() >= h
        assert (arr >= h + 1).sum() < h + 1

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_bounded_by_size_and_max(self, values):
        arr = np.array(values)
        assert h_index(arr) <= min(arr.size, arr.max(initial=0))


class TestSweeps:
    def test_synchronous_matches_scalar(self, fig2_graph):
        h = fig2_graph.degrees().astype(np.int64)
        swept = synchronous_sweep(fig2_graph, h)
        expected = np.array(
            [h_index(h[fig2_graph.neighbors(v)]) for v in range(8)]
        )
        assert np.array_equal(swept, expected)

    def test_fig2_first_sweep(self, fig2_graph):
        # Paper Example 1: after the first iteration h(v7) drops 2 -> 1.
        h0 = fig2_graph.degrees().astype(np.int64)
        h1 = synchronous_sweep(fig2_graph, h0)
        assert h1.tolist() == [3, 3, 3, 3, 2, 2, 1, 1]

    def test_monotone_non_increasing(self):
        g = gnm_random_undirected(30, 80, seed=0)
        h = g.degrees().astype(np.int64)
        for _ in range(10):
            new_h = synchronous_sweep(g, h)
            assert np.all(new_h <= h)
            h = new_h

    def test_fixed_point_is_core_numbers(self):
        import networkx as nx

        g = gnm_random_undirected(25, 60, seed=1)
        h = g.degrees().astype(np.int64)
        for _ in range(g.num_vertices + 1):
            new_h = synchronous_sweep(g, h)
            if np.array_equal(new_h, h):
                break
            h = new_h
        nx_graph = nx.Graph(list(map(tuple, g.edges().tolist())))
        nx_graph.add_nodes_from(range(g.num_vertices))
        expected = nx.core_number(nx_graph)
        assert all(h[v] == expected[v] for v in range(g.num_vertices))

    def test_inplace_sweep_same_fixed_point(self):
        g = gnm_random_undirected(25, 60, seed=2)
        order = degree_descending_order(g)

        h_sync = g.degrees().astype(np.int64)
        for _ in range(g.num_vertices + 1):
            new_h = synchronous_sweep(g, h_sync)
            if np.array_equal(new_h, h_sync):
                break
            h_sync = new_h

        h_gs = g.degrees().astype(np.int64)
        for _ in range(g.num_vertices + 1):
            before = h_gs.copy()
            inplace_sweep(g, h_gs, order)
            if np.array_equal(before, h_gs):
                break
        assert np.array_equal(h_sync, h_gs)

    def test_inplace_converges_no_slower(self):
        g = gnm_random_undirected(30, 90, seed=3)
        order = degree_descending_order(g)

        def sweeps_to_converge(step):
            h = g.degrees().astype(np.int64)
            for iteration in range(1, g.num_vertices + 2):
                before = h.copy()
                h = step(h)
                if np.array_equal(before, h):
                    return iteration
            return g.num_vertices + 2

        sync = sweeps_to_converge(lambda h: synchronous_sweep(g, h))
        gauss = sweeps_to_converge(lambda h: inplace_sweep(g, h, order))
        assert gauss <= sync

    def test_degree_descending_order(self, fig2_graph):
        order = degree_descending_order(fig2_graph)
        degrees = fig2_graph.degrees()
        assert list(degrees[order]) == sorted(degrees, reverse=True)

    def test_empty_graph_sweep(self):
        g = UndirectedGraph.empty(0)
        assert synchronous_sweep(g, np.array([], dtype=np.int64)).size == 0
