"""Shared fixtures: the paper's worked example graphs and random factories."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import DirectedGraph, UndirectedGraph


@pytest.fixture
def fig2_graph() -> UndirectedGraph:
    """The paper's Fig. 2 walkthrough graph.

    A K4 on vertices {0, 1, 2, 3} (v1..v4) plus the tail 3-4-5-6-7
    (v4-v5-v6-v7-v8).  k* = 3; the k*-core is the K4; Local needs 4
    h-index sweeps, PKMC stops after 2 (paper Example 1).
    """
    return UndirectedGraph.from_edges(
        8,
        [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3),
         (3, 4), (4, 5), (5, 6), (6, 7)],
    )


@pytest.fixture
def fig3_graph() -> DirectedGraph:
    """The paper's Fig. 3 / Table 3 directed graph.

    ids: u1..u4 = 0..3, v1..v5 = 4..8.  Edge weights and induce-numbers
    are spelled out in the paper's Example 2 and Table 3; w* = 6 and the
    w*-induced subgraph is {u1, u2} x {v1, v2, v3}.
    """
    return DirectedGraph.from_edges(
        9,
        [(0, 4), (0, 5), (0, 6),
         (1, 4), (1, 5), (1, 6), (1, 7), (1, 8),
         (2, 6), (2, 7),
         (3, 7)],
    )


# Expected induce-numbers for fig3_graph keyed by (u, v), from Table 3.
FIG3_INDUCE_NUMBERS = {
    (3, 7): 3,
    (2, 6): 4, (2, 7): 4,
    (1, 7): 5, (1, 8): 5,
    (0, 4): 6, (0, 5): 6, (0, 6): 6,
    (1, 4): 6, (1, 5): 6, (1, 6): 6,
}


@pytest.fixture
def fig4_graph() -> DirectedGraph:
    """A graph with the paper's Fig. 4 behaviour.

    w* = 12 and the maximum cn-pair is [4, 3]: S = {u1, u2, u3},
    T = {v1..v4}, while the weight-12 edges with degree pair [6, 2]
    (through v6/v7) do NOT form a [6, 2]-core.
    ids: u1..u4 = 0..3, v1..v7 = 4..10.
    """
    return DirectedGraph.from_edges(
        11,
        [(0, 4), (0, 5), (0, 6), (0, 7),
         (1, 4), (1, 5), (1, 6), (1, 7), (1, 8), (1, 9),
         (2, 4), (2, 5), (2, 6), (2, 7), (2, 8), (2, 10),
         (3, 8), (3, 9), (3, 10)],
    )


@pytest.fixture
def triangle_graph() -> UndirectedGraph:
    """K3: the smallest graph whose densest subgraph is itself (rho = 1)."""
    return UndirectedGraph.from_edges(3, [(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def small_random_undirected():
    """Factory: seeded random undirected graphs small enough to brute force."""
    from repro.graph import gnm_random_undirected

    def build(seed: int, n: int = 12, m: int = 26) -> UndirectedGraph:
        return gnm_random_undirected(n, m, seed=seed)

    return build


@pytest.fixture
def small_random_directed():
    """Factory: seeded random directed graphs small enough to brute force."""
    from repro.graph import gnm_random_directed

    def build(seed: int, n: int = 9, m: int = 26) -> DirectedGraph:
        return gnm_random_directed(n, m, seed=seed)

    return build


def assert_is_subgraph_vertices(graph: UndirectedGraph, vertices: np.ndarray) -> None:
    """All returned vertex ids must be valid and unique."""
    assert vertices.size == np.unique(vertices).size
    if vertices.size:
        assert vertices.min() >= 0
        assert vertices.max() < graph.num_vertices
