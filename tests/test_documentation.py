"""Documentation quality gates: every public item must be documented."""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


ALL_MODULES = list(_walk_modules())


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and len(module.__doc__.strip()) > 20, module.__name__


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_public_functions_and_classes_documented(module):
    undocumented = []
    for name in getattr(module, "__all__", []):
        item = getattr(module, name)
        if inspect.isfunction(item) or inspect.isclass(item):
            if not (item.__doc__ and item.__doc__.strip()):
                undocumented.append(name)
            if inspect.isclass(item):
                for member_name, member in inspect.getmembers(item):
                    if member_name.startswith("_"):
                        continue
                    if inspect.isfunction(member) and member.__qualname__.startswith(
                        item.__name__
                    ):
                        if not (member.__doc__ and member.__doc__.strip()):
                            undocumented.append(f"{name}.{member_name}")
    assert not undocumented, f"{module.__name__}: {undocumented}"


def test_every_package_exports_something():
    packages = [m for m in ALL_MODULES if hasattr(m, "__path__")]
    for package in packages:
        assert getattr(package, "__all__", None) or package.__doc__


def test_api_methods_have_distinct_docstrings():
    from repro import DDS_METHODS, UDS_METHODS

    for registry in (UDS_METHODS, DDS_METHODS):
        docs = [fn.__doc__ for fn in registry.values()]
        assert all(doc and doc.strip() for doc in docs)
        assert len(set(docs)) == len(docs)  # no copy-pasted descriptions
