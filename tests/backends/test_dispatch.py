"""Backend selection: precedence, scoping, availability, engine threading."""

import dataclasses

import numpy as np
import pytest

from repro import backends
from repro.backends import (
    BACKEND_ENV_VAR,
    DEFAULT_BACKEND,
    available_backends,
    backend_name,
    get_backend,
    resolve_backend_name,
    set_backend,
    use_backend,
)
from repro.backends.numba_backend import HAVE_NUMBA
from repro.engine import ExecutionContext, run
from repro.errors import BackendError
from repro.graph import chung_lu_undirected
from repro.store.memo import make_cache_key


@pytest.fixture(autouse=True)
def clean_selection(monkeypatch):
    """Each test starts from the stock state: no env var, no override."""
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
    saved = list(backends._override)
    backends._override.clear()
    yield
    backends._override[:] = saved


@pytest.fixture(scope="module")
def graph():
    return chung_lu_undirected(600, 2_400, seed=5)


class TestPrecedence:
    def test_default_is_numpy(self):
        assert DEFAULT_BACKEND == "numpy"
        assert backend_name() == "numpy"
        assert get_backend().name == "numpy"

    def test_env_var_selects(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "multiproc")
        assert backend_name() == "multiproc"

    def test_explicit_name_beats_override_and_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "multiproc")
        with use_backend("multiproc"):
            assert resolve_backend_name("numpy") == "numpy"

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        with use_backend("multiproc"):
            assert backend_name() == "multiproc"

    def test_empty_env_falls_through(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "  ")
        assert backend_name() == DEFAULT_BACKEND


class TestScoping:
    def test_use_backend_restores_on_exit(self):
        with use_backend("multiproc"):
            assert backend_name() == "multiproc"
        assert backend_name() == DEFAULT_BACKEND

    def test_use_backend_nests(self):
        with use_backend("multiproc"):
            with use_backend("numpy"):
                assert backend_name() == "numpy"
            assert backend_name() == "multiproc"

    def test_use_backend_none_is_noop_scope(self):
        with use_backend("multiproc"):
            with use_backend(None) as active:
                assert active.name == "multiproc"
                assert backend_name() == "multiproc"

    def test_use_backend_restores_after_exception(self):
        with pytest.raises(RuntimeError):
            with use_backend("multiproc"):
                raise RuntimeError("boom")
        assert backend_name() == DEFAULT_BACKEND

    def test_set_backend_installs_and_clears(self):
        set_backend("multiproc")
        assert backend_name() == "multiproc"
        set_backend(None)
        assert backend_name() == DEFAULT_BACKEND


class TestValidation:
    def test_unknown_name_raises(self):
        with pytest.raises(BackendError, match="unknown backend 'cuda'"):
            resolve_backend_name("cuda")
        with pytest.raises(BackendError, match="unknown backend"):
            get_backend("cuda")

    def test_unknown_env_value_raises(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "gpu")
        with pytest.raises(BackendError, match="unknown backend 'gpu'"):
            backend_name()

    def test_use_backend_validates_before_entering(self):
        with pytest.raises(BackendError):
            with use_backend("cuda"):
                raise AssertionError("the body must never run")
        assert backend_name() == DEFAULT_BACKEND

    def test_engine_rejects_unknown_backend_before_running(self, graph):
        with pytest.raises(BackendError, match="unknown backend"):
            run("pkmc", graph, ExecutionContext(backend="cuda"))

    def test_available_backends_covers_registry(self):
        report = available_backends()
        assert set(report) == {"numpy", "multiproc", "numba"}
        assert report["numpy"] is True
        assert report["multiproc"] is True
        assert report["numba"] is HAVE_NUMBA

    def test_numba_selection_gated_on_availability(self):
        if HAVE_NUMBA:  # pragma: no cover - container has no numba
            assert get_backend("numba").available()
        else:
            with pytest.raises(BackendError, match="not available"):
                get_backend("numba")


class TestEngineThreading:
    def test_report_records_backend(self, graph):
        result = run("pkmc", graph, ExecutionContext(backend="numpy"))
        assert result.report.backend == "numpy"
        assert result.report.as_dict()["backend"] == "numpy"

    def test_report_defaults_to_active_backend(self, graph):
        result = run("pkmc", graph, ExecutionContext())
        assert result.report.backend == "numpy"

    def test_env_var_reaches_report_through_engine(self, graph, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "multiproc")
        result = run("pkmc", graph, ExecutionContext())
        assert result.report.backend == "multiproc"

    def test_results_and_simulated_seconds_backend_invariant(self, graph):
        ctx_numpy = ExecutionContext(num_threads=4)
        ctx_multi = ExecutionContext(num_threads=4, backend="multiproc")
        reference = run("pkmc", graph, ctx_numpy)
        parallel = run("pkmc", graph, ctx_multi)
        assert np.array_equal(reference.vertices, parallel.vertices)
        assert reference.density == parallel.density
        assert reference.iterations == parallel.iterations
        # The cost model is a property of the algorithm, never of the
        # executor: simulated clocks must agree to the last float.
        assert ctx_numpy.simulated_seconds == ctx_multi.simulated_seconds
        # Reports differ only in the backend field.
        assert dataclasses.replace(reference.report, backend="x") == (
            dataclasses.replace(parallel.report, backend="x")
        )

    def test_cache_key_distinguishes_backends(self, graph):
        ctx = ExecutionContext()
        key_numpy = make_cache_key("fp", "uds", "pkmc", ctx, {}, backend="numpy")
        key_multi = make_cache_key(
            "fp", "uds", "pkmc", ctx, {}, backend="multiproc"
        )
        assert key_numpy != key_multi
