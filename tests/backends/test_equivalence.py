"""Bit-identity fuzz: every backend computes exactly the numpy reference.

The backend contract is strict equality — same values, same dtype — not
numerical closeness.  These tests drive the three :class:`~repro.
backends.base.ArrayBackend` operations across the same graph menagerie
the kernel suite uses (Chung–Lu, star, path, clique) with
``inline_slot_cutoff=0`` so the multiproc backend cannot fall back to
the in-process path: every comparison below crossed a process boundary.
"""

import numpy as np
import pytest

from repro.backends.multiproc import MultiprocBackend
from repro.backends.numpy_backend import NumpyBackend
from repro.graph import chung_lu_undirected
from repro.graph.undirected import UndirectedGraph


def star_graph(n: int) -> UndirectedGraph:
    hub = np.zeros(n - 1, dtype=np.int64)
    leaves = np.arange(1, n, dtype=np.int64)
    return UndirectedGraph.from_edges(n, np.stack([hub, leaves], axis=1))


def path_graph(n: int) -> UndirectedGraph:
    a = np.arange(n - 1, dtype=np.int64)
    return UndirectedGraph.from_edges(n, np.stack([a, a + 1], axis=1))


def clique_graph(n: int) -> UndirectedGraph:
    a, b = np.triu_indices(n, k=1)
    return UndirectedGraph.from_edges(n, np.stack([a, b], axis=1))


GRAPHS = {
    "chung_lu": lambda: chung_lu_undirected(900, 5_400, seed=13),
    "star": lambda: star_graph(700),
    "path": lambda: path_graph(800),
    "clique": lambda: clique_graph(42),
}


@pytest.fixture(scope="module")
def reference():
    return NumpyBackend()


@pytest.fixture(scope="module")
def multiproc():
    backend = MultiprocBackend(workers=2, inline_slot_cutoff=0)
    yield backend
    backend.close()


@pytest.fixture(scope="module", params=sorted(GRAPHS))
def graph(request):
    return GRAPHS[request.param]()


def assert_identical(expected: np.ndarray, actual: np.ndarray):
    assert expected.dtype == actual.dtype
    assert expected.shape == actual.shape
    assert np.array_equal(expected, actual)


class TestSweepValues:
    def test_full_sweep_bit_identical(self, graph, reference, multiproc):
        h = graph.degrees().astype(np.int64)
        assert_identical(
            reference.sweep_values(graph, h), multiproc.sweep_values(graph, h)
        )

    def test_subset_sweeps_bit_identical(self, graph, reference, multiproc):
        rng = np.random.default_rng(7)
        h = graph.degrees().astype(np.int64)
        n = graph.num_vertices
        subsets = [
            np.arange(n, dtype=np.int64),                 # everyone, by subset path
            rng.choice(n, size=max(1, n // 3), replace=False),
            np.array([0], dtype=np.int64),                # single vertex
            np.array([n - 1, 0], dtype=np.int64),         # unsorted
        ]
        for subset in subsets:
            subset = np.asarray(subset, dtype=np.int64)
            assert_identical(
                reference.sweep_values(graph, h, subset),
                multiproc.sweep_values(graph, h, subset),
            )

    def test_iterated_to_fixed_point_bit_identical(self, graph, reference, multiproc):
        def converge(backend):
            h = graph.degrees().astype(np.int64)
            sweeps = 0
            while True:
                new_h = backend.sweep_values(graph, h)
                sweeps += 1
                if np.array_equal(new_h, h):
                    return h, sweeps
                h = new_h

        h_ref, sweeps_ref = converge(reference)
        h_multi, sweeps_multi = converge(multiproc)
        assert sweeps_ref == sweeps_multi
        assert_identical(h_ref, h_multi)

    def test_mid_iteration_values_bit_identical(self, graph, reference, multiproc):
        # Not just the fixed point: every intermediate sweep must agree,
        # otherwise iteration counts could diverge on other graphs.
        h_ref = graph.degrees().astype(np.int64)
        h_multi = h_ref.copy()
        for _ in range(4):
            h_ref = reference.sweep_values(graph, h_ref)
            h_multi = multiproc.sweep_values(graph, h_multi)
            assert_identical(h_ref, h_multi)


class TestInducedEdgeCount:
    def test_masks_bit_identical(self, graph, reference, multiproc):
        rng = np.random.default_rng(3)
        n = graph.num_vertices
        masks = [
            np.ones(n, dtype=bool),
            np.zeros(n, dtype=bool),
            rng.random(n) < 0.5,
        ]
        for member in masks:
            assert reference.induced_edge_count(graph, member) == (
                multiproc.induced_edge_count(graph, member)
            )


class TestSegmentFallback:
    def test_generic_segments_match_reference(self, reference, multiproc):
        # segment_h_index on the multiproc backend is a documented
        # in-process fallback; it must still match bit for bit.
        rng = np.random.default_rng(11)
        lens = rng.integers(0, 9, size=300)
        seg_ptr = np.zeros(lens.size + 1, dtype=np.int64)
        np.cumsum(lens, out=seg_ptr[1:])
        values = rng.integers(0, 40, size=int(seg_ptr[-1]))
        assert_identical(
            reference.segment_h_index(seg_ptr, values),
            multiproc.segment_h_index(seg_ptr, values),
        )


class TestWorkerCountInvariance:
    def test_three_workers_match_two(self, graph, reference, multiproc):
        h = graph.degrees().astype(np.int64)
        expected = reference.sweep_values(graph, h)
        other = MultiprocBackend(workers=3, inline_slot_cutoff=0)
        try:
            assert_identical(expected, other.sweep_values(graph, h))
        finally:
            other.close()
