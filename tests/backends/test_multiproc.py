"""Multiproc backend internals: worker-side state, pool lifecycle, splits.

The load-bearing regression here is the frozen-CSR contract across the
process boundary: workers must *rebuild* the lazy scratch buffers from
the shared-memory CSR views (never unpickle parent state), and both the
CSR views and the rebuilt scratch must come out read-only — the same
guarantees lint rule R005 and ``tests/kernels/test_scratch.py`` pin for
the single-process path.  ``MultiprocBackend.inspect_workers`` reports
each worker's actual in-process view, so the assertions below are
against live spawned workers, not a simulation.
"""

import os

import numpy as np
import pytest

from repro.backends.multiproc import MultiprocBackend, _layout
from repro.errors import BackendError
from repro.graph import chung_lu_undirected


@pytest.fixture()
def backend():
    instance = MultiprocBackend(workers=2, inline_slot_cutoff=0)
    yield instance
    instance.close()


@pytest.fixture(scope="module")
def graph():
    return chung_lu_undirected(1_200, 6_000, seed=21)


class TestWorkerState:
    def test_workers_are_separate_processes(self, backend, graph):
        reports = backend.inspect_workers(graph)
        pids = {report["pid"] for report in reports}
        assert len(reports) == 2
        assert os.getpid() not in pids
        assert len(pids) == 2

    def test_csr_views_are_shared_memory_and_frozen(self, backend, graph):
        for report in backend.inspect_workers(graph):
            assert report["indptr_is_shm_view"]
            assert report["indices_is_shm_view"]
            assert report["indptr_writeable"] is False
            assert report["indices_writeable"] is False

    def test_scratch_rebuilt_locally_and_read_only(self, backend, graph):
        # Populate the parent's scratch cache first: if worker graphs
        # were pickled from the parent, this is exactly the stale state
        # they would arrive with.
        graph.heads()
        graph.hindex_bins()
        h = graph.degrees().astype(np.int64)
        backend.sweep_values(graph, h)
        for report in backend.inspect_workers(graph):
            # The full-sweep path needs degrees/heads-free range layouts
            # only; whatever scratch *was* built in the worker must be
            # frozen, mirroring the parent-side contract.
            for key, writeable in report["scratch_writeable"].items():
                assert writeable is False, f"worker scratch {key!r} is writeable"
            assert report["range_cache_keys"], "worker never cached a range layout"

    def test_range_layouts_cached_across_sweeps(self, backend, graph):
        h = graph.degrees().astype(np.int64)
        backend.sweep_values(graph, h)
        first = [r["range_cache_keys"] for r in backend.inspect_workers(graph)]
        backend.sweep_values(graph, h)
        second = [r["range_cache_keys"] for r in backend.inspect_workers(graph)]
        assert first == second  # re-sweeping adds no new layouts


class TestPoolLifecycle:
    def test_close_then_reuse_respawns(self, backend, graph):
        h = graph.degrees().astype(np.int64)
        expected = backend.sweep_values(graph, h)
        backend.close()
        assert backend._procs == []
        again = backend.sweep_values(graph, h)
        assert np.array_equal(expected, again)

    def test_close_is_idempotent(self, backend):
        backend.close()
        backend.close()

    def test_graph_lru_evicts_and_stays_correct(self):
        backend = MultiprocBackend(workers=2, inline_slot_cutoff=0)
        try:
            graphs = [
                chung_lu_undirected(300, 1_200, seed=s) for s in range(9)
            ]
            expected = [
                g.degrees().astype(np.int64) for g in graphs
            ]
            for g, h in zip(graphs, expected):
                backend.sweep_values(g, h)
            assert len(backend._graphs) == 8  # LRU cap
            # The evicted (first) graph still computes correctly after
            # re-publication.
            h0 = expected[0]
            from repro.backends.numpy_backend import sweep_values_numpy

            assert np.array_equal(
                backend.sweep_values(graphs[0], h0),
                sweep_values_numpy(graphs[0], h0),
            )
        finally:
            backend.close()

    def test_worker_failure_raises_backend_error_and_resets(self, backend, graph):
        backend._ensure_pool()
        # An unknown task kind makes the worker answer with an error
        # tuple; the pool must surface it as BackendError.
        shared = backend._prepare(graph)
        backend._seq += 1
        backend._conns[0].send(("explode", shared.meta, 0, 1, backend._seq))
        with pytest.raises(BackendError, match="unknown worker task"):
            backend._collect([backend._conns[0]])


class TestPerfAccounting:
    def test_inline_cutoff_counts_inline_calls(self, graph):
        backend = MultiprocBackend(workers=2, inline_slot_cutoff=10**9)
        try:
            h = graph.degrees().astype(np.int64)
            backend.sweep_values(graph, h)
            snapshot = backend.perf_snapshot()
            assert snapshot["inline_calls"] == 1
            assert snapshot["dispatched_calls"] == 0
            assert backend._procs == []  # never spawned
        finally:
            backend.close()

    def test_dispatch_accumulates_and_resets(self, backend, graph):
        h = graph.degrees().astype(np.int64)
        backend.sweep_values(graph, h)
        snapshot = backend.perf_snapshot()
        assert snapshot["dispatched_calls"] == 1
        assert snapshot["tasks"] == 2
        assert snapshot["elapsed_s"] > 0.0
        assert snapshot["critical_s"] > 0.0
        backend.reset_perf()
        assert backend.perf_snapshot()["dispatched_calls"] == 0


class TestBalancedBounds:
    def test_balances_slot_mass_not_vertex_count(self):
        # One hub with 1000 slots then 1000 single-slot vertices: an
        # element split would give worker 0 half the vertices; the slot
        # split isolates the hub.
        degrees = np.concatenate([[1000], np.ones(1000, dtype=np.int64)])
        cumulative = np.zeros(degrees.size + 1, dtype=np.int64)
        np.cumsum(degrees, out=cumulative[1:])
        bounds = MultiprocBackend._balanced_bounds(cumulative, 2)
        assert bounds[0] == 0 and bounds[-1] == degrees.size
        assert bounds[1] <= 1  # the hub alone saturates worker 0

    def test_bounds_cover_range_monotonically(self):
        rng = np.random.default_rng(2)
        degrees = rng.integers(0, 50, size=777)
        cumulative = np.zeros(degrees.size + 1, dtype=np.int64)
        np.cumsum(degrees, out=cumulative[1:])
        for parts in (1, 2, 3, 7):
            bounds = MultiprocBackend._balanced_bounds(cumulative, parts)
            assert bounds.size == parts + 1
            assert bounds[0] == 0 and bounds[-1] == degrees.size
            assert np.all(np.diff(bounds) >= 0)

    def test_more_workers_than_vertices(self):
        cumulative = np.array([0, 3, 5], dtype=np.int64)
        bounds = MultiprocBackend._balanced_bounds(cumulative, 8)
        assert bounds[0] == 0 and bounds[-1] == 2
        assert np.all(np.diff(bounds) >= 0)


class TestSharedLayout:
    def test_layout_fields_are_eight_byte_aligned(self):
        for dtype in (np.dtype(np.int32), np.dtype(np.int64)):
            layout = _layout(1001, 4242, dtype)
            for name, (offset, _, _) in layout.items():
                if name == "__total__":  # total byte size, not a field
                    continue
                assert offset % 8 == 0, f"{name} misaligned at {offset}"

    def test_h_block_uses_graph_index_dtype(self):
        layout = _layout(10, 20, np.dtype(np.int32))
        assert layout["h"][2] == np.dtype(np.int32)
        assert layout["out"][2] == np.dtype(np.int64)
