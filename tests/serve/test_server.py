"""DsdServer behaviour: coalescing, batching, admission, caching, reports.

Everything here runs on tiny explicit graph tables (no registry loads)
and, where timing matters, a fake injectable clock — so the suite is
fast and fully deterministic under any backend.
"""

import numpy as np
import pytest

from repro.engine import ExecutionContext, resolve_solver
from repro.engine import run as engine_run
from repro.errors import AlgorithmError, DatasetError, ServeRejected
from repro.graph import chung_lu_undirected
from repro.serve import DsdServer, Query, TenantQuotas, build_query_mix
from repro.store.memo import enable_default_cache, disable_default_cache


class FakeClock:
    """Monotonic clock advanced explicitly by the test."""

    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture(scope="module")
def graphs():
    return {
        "alpha": chung_lu_undirected(200, 600, seed=21),
        "beta": chung_lu_undirected(250, 800, seed=22),
    }


def make_server(graphs, **kwargs):
    kwargs.setdefault("clock", FakeClock())
    return DsdServer(graphs=graphs, **kwargs)


def assert_bit_identical(result, expected):
    assert np.array_equal(result.vertices, expected.vertices)
    assert result.density == expected.density  # repro-lint: disable=R004 (bit-identity is the contract under test)
    assert result.iterations == expected.iterations


class TestSingleFlight:
    def test_n_identical_queries_one_solver_run(self, graphs):
        server = make_server(graphs)
        responses = server.serve([Query("alpha", "pkmc")] * 5)
        assert server.stats.solver_runs == 1
        assert server.stats.coalesced_queries == 4
        assert len(responses) == 5
        expected = engine_run("pkmc", graphs["alpha"], ExecutionContext())
        for response in responses:
            assert response.ok
            assert response.coalesced == 5
            assert_bit_identical(response.result, expected)

    def test_followers_get_independent_clones(self, graphs):
        server = make_server(graphs)
        first, second = server.serve([Query("alpha", "pkmc")] * 2)
        assert first.result is not second.result
        second.result.vertices[0] = -1
        assert first.result.vertices[0] != -1

    def test_different_params_never_coalesce(self, graphs):
        server = make_server(graphs)
        server.serve(
            [
                Query("alpha", "greedypp", params={"num_rounds": 2}),
                Query("alpha", "greedypp", params={"num_rounds": 3}),
            ]
        )
        assert server.stats.solver_runs == 2
        assert server.stats.coalesced_queries == 0

    def test_different_tenants_same_work_coalesce(self, graphs):
        server = make_server(graphs)
        responses = server.serve(
            [Query("alpha", "pkmc", tenant="a"), Query("alpha", "pkmc", tenant="b")]
        )
        assert server.stats.solver_runs == 1
        assert all(r.coalesced == 2 for r in responses)

    def test_uncacheable_params_get_unique_flight_keys(self, graphs):
        server = make_server(graphs)
        spec = resolve_solver("greedypp", graphs["alpha"])
        query = Query("alpha", "greedypp", params={"num_rounds": {"odd": 2}})
        first = server._flight_key(graphs["alpha"], spec, query, 0)
        second = server._flight_key(graphs["alpha"], spec, query, 1)
        assert first[0] == "__uncacheable__"
        assert first != second


class TestBatching:
    def test_flights_batched_per_graph(self, graphs):
        server = make_server(graphs, num_workers=2)
        responses = server.serve(
            [
                Query("alpha", "pkmc"),
                Query("beta", "pkmc"),
                Query("alpha", "charikar"),
                Query("beta", "pkmc"),
            ]
        )
        assert server.stats.batches == 2
        alpha = [r for r in responses if r.query.dataset == "alpha"]
        beta = [r for r in responses if r.query.dataset == "beta"]
        # Batch size counts queries (not flights) sharing the graph.
        assert all(r.batch_size == 2 for r in alpha)
        assert all(r.batch_size == 2 for r in beta)
        # One simulated worker per batch, round-robin.
        assert {r.worker_id for r in alpha} == {0}
        assert {r.worker_id for r in beta} == {1}

    def test_empty_drain_is_a_noop(self, graphs):
        server = make_server(graphs)
        assert server.drain() == []
        assert server.stats.batches == 0


class TestAdmissionControl:
    def test_queue_full_sheds_later_submissions(self, graphs):
        server = make_server(graphs, max_queue_depth=2)
        server.submit(Query("alpha", "pkmc"))
        server.submit(Query("alpha", "charikar"))
        with pytest.raises(ServeRejected) as exc_info:
            server.submit(Query("beta", "pkmc"))
        assert exc_info.value.reason == "queue_full"
        assert exc_info.value.retry_after_s == 0.0
        # FIFO shedding: the earlier submissions keep their slots.
        responses = server.drain()
        assert [r.query.solver for r in responses] == ["pkmc", "charikar"]
        assert server.stats.rejected_queue_full == 1
        assert server.stats.accepted == 2

    def test_queue_frees_after_drain(self, graphs):
        server = make_server(graphs, max_queue_depth=1)
        server.submit(Query("alpha", "pkmc"))
        server.drain()
        server.submit(Query("alpha", "pkmc"))  # must not raise
        assert server.queue_depth == 1

    def test_quota_exhaustion_has_retry_after(self, graphs):
        clock = FakeClock()
        server = make_server(
            graphs, clock=clock, quotas=TenantQuotas(rate=1.0, burst=2)
        )
        server.submit(Query("alpha", "pkmc"))
        server.submit(Query("alpha", "pkmc"))
        with pytest.raises(ServeRejected) as exc_info:
            server.submit(Query("alpha", "pkmc"))
        assert exc_info.value.reason == "quota"
        assert exc_info.value.retry_after_s == pytest.approx(1.0)
        assert server.stats.rejected_quota == 1
        # The advertised retry-after is honest: admission succeeds then.
        clock.advance(1.0)
        server.submit(Query("alpha", "pkmc"))
        assert server.stats.accepted == 3

    def test_quotas_are_per_tenant(self, graphs):
        server = make_server(graphs, quotas=TenantQuotas(rate=1.0, burst=1))
        server.submit(Query("alpha", "pkmc", tenant="a"))
        with pytest.raises(ServeRejected):
            server.submit(Query("alpha", "pkmc", tenant="a"))
        server.submit(Query("alpha", "pkmc", tenant="b"))  # unaffected

    def test_shed_queries_never_spend_quota_tokens(self, graphs):
        server = make_server(
            graphs, max_queue_depth=1, quotas=TenantQuotas(rate=1.0, burst=1)
        )
        server.submit(Query("alpha", "pkmc"))
        # Queue is full: this rejection must not charge the bucket.
        with pytest.raises(ServeRejected, match="queue_full"):
            server.submit(Query("alpha", "pkmc"))
        server.drain()
        with pytest.raises(ServeRejected, match="quota"):
            server.submit(Query("alpha", "pkmc"))

    def test_peak_queue_depth_is_tracked(self, graphs):
        server = make_server(graphs, max_queue_depth=8)
        for _ in range(3):
            server.submit(Query("alpha", "pkmc"))
        server.drain()
        server.submit(Query("alpha", "pkmc"))
        assert server.stats.peak_queue_depth == 3

    def test_serve_turns_rejections_into_responses_in_order(self, graphs):
        server = make_server(graphs, max_queue_depth=2)
        queries = [Query("alpha", "pkmc")] * 4
        responses = server.serve(queries)
        assert [r.ok for r in responses] == [True, True, False, False]
        shed = responses[2]
        assert shed.status == "rejected"
        assert shed.reason == "queue_full"
        assert shed.retry_after_s == 0.0
        assert shed.result is None


class TestValidation:
    def test_unknown_dataset_is_a_dataset_error(self, graphs):
        server = make_server(graphs)
        with pytest.raises(DatasetError):
            server.submit(Query("no-such-graph", "pkmc"))

    def test_unknown_solver_is_an_algorithm_error(self, graphs):
        server = make_server(graphs)
        with pytest.raises(AlgorithmError):
            server.submit(Query("alpha", "definitely-not-a-solver"))

    def test_registry_datasets_resolve_by_abbreviation(self):
        server = make_server(None)
        response, = server.serve([Query("PT", "charikar")])
        assert response.ok
        assert response.result.density > 0

    def test_invalid_construction(self, graphs):
        with pytest.raises(ValueError):
            DsdServer(graphs=graphs, num_workers=0)
        with pytest.raises(ValueError):
            DsdServer(graphs=graphs, max_queue_depth=0)


class TestReports:
    def test_serve_fields_on_report_and_response(self, graphs):
        clock = FakeClock()
        server = make_server(graphs, clock=clock)
        server.submit(Query("alpha", "pkmc"))
        server.submit(Query("alpha", "pkmc"))
        clock.advance(5.0)
        first, second = server.drain()
        for response in (first, second):
            report = response.result.report
            assert report.queue_wait_s == pytest.approx(5.0)
            assert response.queue_wait_s == pytest.approx(5.0)
            assert report.batch_size == 2 == response.batch_size
            assert report.coalesced == 2 == response.coalesced
            assert response.latency_s == pytest.approx(5.0)

    def test_direct_engine_runs_have_zero_serve_fields(self, graphs):
        result = engine_run("pkmc", graphs["alpha"], ExecutionContext())
        assert result.report.queue_wait_s == 0.0
        assert result.report.batch_size == 0
        assert result.report.coalesced == 0

    def test_report_as_dict_round_trips_serve_fields(self, graphs):
        server = make_server(graphs)
        response, = server.serve([Query("alpha", "pkmc")])
        payload = response.result.report.as_dict()
        assert payload["batch_size"] == 1
        assert payload["coalesced"] == 1
        assert payload["queue_wait_s"] >= 0.0


class TestCaching:
    def test_repeat_across_drains_hits_cache(self, graphs):
        server = make_server(graphs)
        first, = server.serve([Query("alpha", "pkmc")])
        second, = server.serve([Query("alpha", "pkmc")])
        assert server.stats.solver_runs == 1
        assert server.stats.cache_hits == 1
        assert second.result.report.cache_hit
        assert_bit_identical(second.result, first.result)

    def test_ttl_expiry_forces_recompute(self, graphs):
        clock = FakeClock()
        server = make_server(graphs, clock=clock, cache_ttl=10.0)
        server.serve([Query("alpha", "pkmc")])
        clock.advance(11.0)
        server.serve([Query("alpha", "pkmc")])
        assert server.stats.solver_runs == 2
        assert server.cache_stats()["expired"] == 1

    def test_within_ttl_still_served_from_cache(self, graphs):
        clock = FakeClock()
        server = make_server(graphs, clock=clock, cache_ttl=10.0)
        server.serve([Query("alpha", "pkmc")])
        clock.advance(9.0)
        server.serve([Query("alpha", "pkmc")])
        assert server.stats.solver_runs == 1
        assert server.stats.cache_hits == 1

    def test_cache_disabled_reruns_but_still_coalesces(self, graphs):
        server = make_server(graphs, cache_entries=0)
        server.serve([Query("alpha", "pkmc")] * 2)
        server.serve([Query("alpha", "pkmc")])
        assert server.stats.solver_runs == 2  # one per drain
        assert server.stats.coalesced_queries == 1
        assert server.cache_stats() == {
            "hits": 0, "misses": 0, "expired": 0, "entries": 0,
        }

    def test_private_cache_does_not_touch_default_cache(self, graphs):
        disable_default_cache()
        shared = enable_default_cache(max_entries=4)
        try:
            server = make_server(graphs)
            server.serve([Query("alpha", "pkmc")])
            assert len(shared) == 0
            assert server.cache_stats()["entries"] == 1
        finally:
            disable_default_cache()


class TestReplayEquivalence:
    def test_served_mix_is_bit_identical_to_direct_runs(self, graphs):
        solvers = ["pkmc", "charikar"]
        queries = build_query_mix(
            "hot-graph", list(graphs), solvers, 30, seed=5, tenants=("a", "b")
        )
        server = make_server(graphs, max_queue_depth=64)
        reference = {
            (dataset, solver): engine_run(
                solver, graphs[dataset], ExecutionContext()
            )
            for dataset in graphs
            for solver in solvers
        }
        for offset in range(0, len(queries), 10):
            for response in server.serve(queries[offset:offset + 10]):
                assert response.ok
                expected = reference[
                    response.query.dataset, response.query.solver
                ]
                assert_bit_identical(response.result, expected)
        stats = server.stats
        assert stats.completed == 30
        assert stats.solver_runs + stats.cache_hits + stats.coalesced_queries == 30


class TestLifecycle:
    def test_close_drops_queue_and_graphs(self, graphs):
        server = make_server(dict(graphs))
        server.submit(Query("alpha", "pkmc"))
        server.close()
        assert server.queue_depth == 0
        assert server.drain() == []
        # Still usable afterwards (registry datasets re-resolve).
        response, = server.serve([Query("PT", "charikar")])
        assert response.ok
