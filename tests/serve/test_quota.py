"""Token-bucket and per-tenant quota arithmetic (pure, fake-time driven)."""

import pytest

from repro.serve import TenantQuotas, TokenBucket


class TestTokenBucket:
    def test_burst_admits_then_rejects(self):
        bucket = TokenBucket(rate=1.0, burst=2)
        assert bucket.try_take(0.0) == 0.0
        assert bucket.try_take(0.0) == 0.0
        assert bucket.try_take(0.0) == pytest.approx(1.0)

    def test_retry_after_is_exact_next_token_delay(self):
        bucket = TokenBucket(rate=4.0, burst=1)
        assert bucket.try_take(0.0) == 0.0
        # Empty bucket at rate 4/s: the next token lands in 0.25s.
        assert bucket.try_take(0.0) == pytest.approx(0.25)
        # 0.1s later, 0.4 tokens accrued: 0.6 still missing.
        assert bucket.try_take(0.1) == pytest.approx(0.6 / 4.0)

    def test_rejection_does_not_spend_tokens(self):
        bucket = TokenBucket(rate=1.0, burst=1)
        bucket.try_take(0.0)
        before = bucket.peek(0.5)
        bucket.try_take(0.5)  # rejected
        assert bucket.peek(0.5) == pytest.approx(before)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=3)
        assert bucket.peek(100.0) == pytest.approx(3.0)

    def test_refill_restores_admission(self):
        bucket = TokenBucket(rate=2.0, burst=1)
        assert bucket.try_take(0.0) == 0.0
        assert bucket.try_take(0.0) > 0.0
        assert bucket.try_take(0.5) == 0.0  # one token accrued

    def test_clock_going_backwards_is_ignored(self):
        bucket = TokenBucket(rate=1.0, burst=2)
        bucket.try_take(10.0)
        assert bucket.peek(5.0) == pytest.approx(1.0)

    @pytest.mark.parametrize("rate, burst", [(0.0, 1), (-1.0, 1), (1.0, 0)])
    def test_invalid_shapes_rejected(self, rate, burst):
        with pytest.raises(ValueError):
            TokenBucket(rate=rate, burst=burst)


class TestTenantQuotas:
    def test_tenants_get_independent_buckets(self):
        quotas = TenantQuotas(rate=1.0, burst=1)
        assert quotas.admit("a", 0.0) == 0.0
        assert quotas.admit("a", 0.0) > 0.0
        assert quotas.admit("b", 0.0) == 0.0  # b's bucket is untouched

    def test_override_shapes_specific_tenant(self):
        quotas = TenantQuotas(rate=1.0, burst=1, overrides={"bulk": (1.0, 3)})
        assert quotas.admit("bulk", 0.0) == 0.0
        assert quotas.admit("bulk", 0.0) == 0.0
        assert quotas.admit("bulk", 0.0) == 0.0
        assert quotas.admit("bulk", 0.0) > 0.0
        assert quotas.admit("other", 0.0) == 0.0
        assert quotas.admit("other", 0.0) > 0.0

    def test_bucket_created_at_first_use_time(self):
        quotas = TenantQuotas(rate=1.0, burst=1)
        # First seen at t=100: the bucket must not have "pre-accrued"
        # beyond its burst from an implicit t=0 birth.
        assert quotas.admit("late", 100.0) == 0.0
        assert quotas.admit("late", 100.0) == pytest.approx(1.0)

    def test_bad_override_fails_at_construction(self):
        with pytest.raises(ValueError):
            TenantQuotas(rate=1.0, burst=1, overrides={"broken": (-1.0, 1)})

    def test_bad_default_fails_at_construction(self):
        with pytest.raises(ValueError):
            TenantQuotas(rate=0.0, burst=1)
