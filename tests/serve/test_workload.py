"""Zipf query-mix generation: determinism, skew shape and validation."""

from collections import Counter

import pytest

from repro.serve import QUERY_MIXES, Query, build_query_mix

DATASETS = ["hot", "warm", "cold"]
SOLVERS = ["pkmc", "charikar", "local"]


class TestBuildQueryMix:
    @pytest.mark.parametrize("mix", QUERY_MIXES)
    def test_deterministic_per_seed(self, mix):
        first = build_query_mix(mix, DATASETS, SOLVERS, 50, seed=3)
        second = build_query_mix(mix, DATASETS, SOLVERS, 50, seed=3)
        assert first == second
        assert build_query_mix(mix, DATASETS, SOLVERS, 50, seed=4) != first

    def test_returns_queries_over_the_given_names(self):
        queries = build_query_mix("uniform", DATASETS, SOLVERS, 30, seed=0)
        assert len(queries) == 30
        assert all(isinstance(q, Query) for q in queries)
        assert {q.dataset for q in queries} <= set(DATASETS)
        assert {q.solver for q in queries} <= set(SOLVERS)

    def test_hot_graph_mix_concentrates_datasets(self):
        queries = build_query_mix("hot-graph", DATASETS, SOLVERS, 400, seed=0)
        counts = Counter(q.dataset for q in queries)
        # Rank 0 is hottest-first by contract and must dominate the tail.
        assert counts["hot"] > counts["cold"]
        assert counts["hot"] > 400 / len(DATASETS)

    def test_hot_solver_mix_concentrates_solvers(self):
        queries = build_query_mix("hot-solver", DATASETS, SOLVERS, 400, seed=0)
        solver_counts = Counter(q.solver for q in queries)
        dataset_counts = Counter(q.dataset for q in queries)
        assert solver_counts["pkmc"] > solver_counts["local"]
        # Datasets stay roughly uniform in this mix.
        assert max(dataset_counts.values()) < 2 * min(dataset_counts.values())

    def test_tenants_assigned_round_robin(self):
        queries = build_query_mix(
            "uniform", DATASETS, SOLVERS, 6, seed=0, tenants=("a", "b", "c")
        )
        assert [q.tenant for q in queries] == ["a", "b", "c", "a", "b", "c"]

    def test_unknown_mix_rejected(self):
        with pytest.raises(ValueError, match="unknown mix"):
            build_query_mix("spicy", DATASETS, SOLVERS, 10)

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            build_query_mix("uniform", [], SOLVERS, 10)
        with pytest.raises(ValueError):
            build_query_mix("uniform", DATASETS, SOLVERS, 10, tenants=())
        with pytest.raises(ValueError):
            build_query_mix("uniform", DATASETS, SOLVERS, -1)
