"""The ``repro-serve`` entry point: replay output and option handling."""

import pytest

from repro.serve.cli import main


@pytest.fixture(scope="module")
def replay_output():
    import io
    from contextlib import redirect_stdout

    buffer = io.StringIO()
    with redirect_stdout(buffer):
        status = main(["--num-queries", "6", "--wave", "3", "--seed", "1"])
    return status, buffer.getvalue()


class TestServeCli:
    def test_exit_code_and_header(self, replay_output):
        status, text = replay_output
        assert status == 0
        assert "replaying 6 'hot-graph' queries in waves of 3" in text

    def test_reports_serving_metadata_per_response(self, replay_output):
        _, text = replay_output
        assert "coalesced=" in text
        assert "batch=" in text
        assert "cache_hit=" in text

    def test_reports_summary_counters(self, replay_output):
        _, text = replay_output
        assert "served 6/6" in text
        assert "cache: hits=" in text

    def test_shed_queries_are_printed_not_raised(self, capsys):
        status = main(
            [
                "--num-queries", "6", "--wave", "6",
                "--max-queue-depth", "2", "--solvers", "charikar",
                "--datasets", "PT",
            ]
        )
        assert status == 0
        text = capsys.readouterr().out
        assert "SHED" in text
        assert "reason=queue_full" in text

    def test_invalid_sizes_rejected(self, capsys):
        assert main(["--num-queries", "0"]) == 2

    def test_unknown_mix_rejected(self):
        with pytest.raises(SystemExit):
            main(["--mix", "nope"])
