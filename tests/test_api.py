"""Tests for the top-level public API."""

import numpy as np
import pytest

from repro import (
    DDS_METHODS,
    UDS_METHODS,
    AlgorithmError,
    SimRuntime,
    densest_subgraph,
    directed_densest_subgraph,
)
from repro.graph import DirectedGraph, UndirectedGraph


@pytest.fixture
def toy_undirected():
    return UndirectedGraph.from_edges(
        5, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)]
    )


@pytest.fixture
def toy_directed():
    return DirectedGraph.from_edges(
        5, [(0, 2), (1, 2), (0, 3), (1, 3), (3, 4)]
    )


class TestUDSDispatch:
    def test_default_is_pkmc(self, toy_undirected):
        result = densest_subgraph(toy_undirected)
        assert result.algorithm == "PKMC"
        assert result.vertices.tolist() == [0, 1, 2]

    def test_every_method_runs(self, toy_undirected):
        for method in UDS_METHODS:
            result = densest_subgraph(toy_undirected, method=method)
            assert result.density > 0

    def test_every_method_two_ish_approximation(self, toy_undirected):
        exact = densest_subgraph(toy_undirected, method="exact")
        for method in UDS_METHODS:
            result = densest_subgraph(toy_undirected, method=method)
            assert result.density * 3 + 1e-9 >= exact.density

    def test_unknown_method(self, toy_undirected):
        with pytest.raises(AlgorithmError, match="unknown UDS method"):
            densest_subgraph(toy_undirected, method="nope")

    def test_threads_forwarded(self, toy_undirected):
        fast = densest_subgraph(toy_undirected, num_threads=8)
        slow = densest_subgraph(toy_undirected, num_threads=1)
        assert fast.simulated_seconds != slow.simulated_seconds

    def test_explicit_runtime_honoured(self, toy_undirected):
        runtime = SimRuntime(num_threads=2)
        result = densest_subgraph(toy_undirected, runtime=runtime)
        assert result.simulated_seconds == runtime.now > 0

    def test_options_forwarded(self, toy_undirected):
        result = densest_subgraph(toy_undirected, method="pbu", epsilon=0.25)
        assert result.extras["epsilon"] == 0.25


class TestDDSDispatch:
    def test_default_is_pwc(self, toy_directed):
        result = directed_densest_subgraph(toy_directed)
        assert result.algorithm == "PWC"
        assert result.x is not None and result.y is not None

    def test_every_method_runs(self, toy_directed):
        for method in DDS_METHODS:
            result = directed_densest_subgraph(toy_directed, method=method)
            assert result.density > 0

    def test_pwc_matches_exact_within_factor_2(self, toy_directed):
        exact = directed_densest_subgraph(toy_directed, method="exact")
        approx = directed_densest_subgraph(toy_directed, method="pwc")
        assert approx.density * 2 + 1e-9 >= exact.density

    def test_unknown_method(self, toy_directed):
        with pytest.raises(AlgorithmError, match="unknown DDS method"):
            directed_densest_subgraph(toy_directed, method="nope")

    def test_options_forwarded(self, toy_directed):
        result = directed_densest_subgraph(
            toy_directed, method="pbd", delta=3.0, epsilon=0.5
        )
        assert result.extras["delta"] == 3.0


class TestExports:
    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None
