"""Tests for the repro-dsd and repro-bench command-line interfaces."""

import pytest

from repro.bench.cli import main as bench_main
from repro.cli import main as dsd_main


@pytest.fixture
def undirected_file(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("a b\nb c\nc a\nc d\n", encoding="utf-8")
    return str(path)


@pytest.fixture
def directed_file(tmp_path):
    path = tmp_path / "d.txt"
    path.write_text("a c\na d\nb c\nb d\n", encoding="utf-8")
    return str(path)


class TestDsdCli:
    def test_undirected_default(self, undirected_file, capsys):
        assert dsd_main([undirected_file]) == 0
        out = capsys.readouterr().out
        assert "PKMC" in out
        assert "k*      : 2" in out
        assert "{a, b, c}" in out

    def test_directed_default(self, directed_file, capsys):
        assert dsd_main([directed_file, "--directed"]) == 0
        out = capsys.readouterr().out
        assert "PWC" in out
        assert "cn-pair : [2, 2]" in out

    def test_method_selection(self, undirected_file, capsys):
        assert dsd_main([undirected_file, "--method", "charikar"]) == 0
        assert "Charikar" in capsys.readouterr().out

    def test_option_forwarding(self, undirected_file, capsys):
        assert dsd_main(
            [undirected_file, "--method", "pbu", "--option", "epsilon=0.25"]
        ) == 0
        assert "PBU" in capsys.readouterr().out

    def test_bad_option_format(self, undirected_file, capsys):
        assert dsd_main([undirected_file, "--option", "nonsense"]) == 1
        assert "KEY=VALUE" in capsys.readouterr().err

    def test_unknown_method(self, undirected_file, capsys):
        assert dsd_main([undirected_file, "--method", "nope"]) == 1
        assert "unknown UDS method" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert dsd_main(["/nonexistent/graph.txt"]) == 1
        assert "error" in capsys.readouterr().err

    def test_top_component(self, tmp_path, capsys):
        # Two disjoint triangles: the 2-core has two components.
        path = tmp_path / "two.txt"
        path.write_text("a b\nb c\nc a\nx y\ny z\nz x\n", encoding="utf-8")
        assert dsd_main([str(path), "--top-component"]) == 0
        out = capsys.readouterr().out
        assert "|S|=3" in out

    def test_max_vertices_truncation(self, undirected_file, capsys):
        assert dsd_main([undirected_file, "--max-vertices", "1"]) == 0
        assert "..." in capsys.readouterr().out

    def test_list_methods_prints_registry_table(self, capsys):
        assert dsd_main(["--list-methods"]) == 0
        out = capsys.readouterr().out
        assert "guarantee" in out and "capabilities" in out
        for name in ("pkmc", "pwc", "charikar", "pkmc-bsp", "pwc-bsp"):
            assert name in out

    def test_missing_path_is_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            dsd_main([])
        assert "path" in capsys.readouterr().err

    def test_no_frontier_runs_frontier_capable_method(self, undirected_file):
        assert dsd_main([undirected_file, "--no-frontier"]) == 0

    def test_no_frontier_rejected_for_serial_method(self, undirected_file, capsys):
        assert dsd_main(
            [undirected_file, "--method", "exact", "--no-frontier"]
        ) == 1
        assert "no frontier kernels" in capsys.readouterr().err


class TestBenchCli:
    def test_list(self, capsys):
        assert bench_main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in (f"exp{i}" for i in range(1, 9)):
            assert name in out

    def test_unknown_experiment(self, capsys):
        assert bench_main(["exp99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_one_with_output(self, tmp_path, capsys):
        assert bench_main(["exp6", "--output", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Table 7" in out
        assert (tmp_path / "exp6.txt").exists()

    def test_charts_flag(self, capsys):
        # exp6 is a table -> no chart, but the flag must not crash.
        assert bench_main(["exp6", "--charts"]) == 0
        assert "Table 7" in capsys.readouterr().out
